package medrpc

import (
	"errors"
	"testing"
	"time"

	"swift/internal/mediator"
	"swift/internal/transport/memnet"
	"swift/internal/wire"
)

// testTier stands up nReplicas federated mediator replicas, each served
// over its own memnet host, peered through wire Mirror RPCs — the full
// deployment shape, minus real sockets.
type testTier struct {
	net     *memnet.Net
	seg     *memnet.Segment
	meds    []*mediator.Mediator
	servers []*Server
	clients []*Client // stubs from the test-client host
}

func newTestTier(t *testing.T, nReplicas int, ttl time.Duration) *testTier {
	t.Helper()
	n := memnet.New(1)
	seg := n.NewSegment("lab", memnet.SegmentConfig{BandwidthBps: 1e9})
	agents := make([]mediator.AgentInfo, 6)
	for i := range agents {
		agents[i] = mediator.AgentInfo{Addr: "agent:7070", Rate: 400e3, Net: 0}
	}
	tier := &testTier{net: n, seg: seg}
	t.Cleanup(func() {
		for _, s := range tier.servers {
			s.Close()
		}
		for _, m := range tier.meds {
			m.Close()
		}
		n.Close()
	})
	names := make([]string, nReplicas)
	for i := range names {
		names[i] = "med-" + string(rune('a'+i))
	}
	for _, name := range names {
		cfg := mediator.Config{
			Agents:   agents,
			Nets:     []mediator.NetInfo{{Name: "lab", Capacity: 1e9}},
			Self:     name,
			LeaseTTL: ttl,
		}
		med, err := mediator.New(cfg)
		if err != nil {
			t.Fatalf("mediator %s: %v", name, err)
		}
		tier.meds = append(tier.meds, med)
		host := n.MustHost(name, memnet.HostConfig{}, seg)
		srv, err := Serve(ServerConfig{Host: host, Port: "7060", Med: med, Logf: t.Logf})
		if err != nil {
			t.Fatalf("serve %s: %v", name, err)
		}
		tier.servers = append(tier.servers, srv)
	}
	// Peer each replica to the others over the wire.
	for i, med := range tier.meds {
		var peers []mediator.Peer
		for j, name := range names {
			if j == i {
				continue
			}
			pc, err := NewClient(ClientConfig{
				Host: n.MustHost(names[i]+"-to-"+name, memnet.HostConfig{}, seg),
				Name: name,
				Addr: name + ":7060",
				Logf: t.Logf,
			})
			if err != nil {
				t.Fatalf("peer stub %s->%s: %v", names[i], name, err)
			}
			peers = append(peers, pc)
		}
		med.SetPeers(peers)
	}
	ch := n.MustHost("client", memnet.HostConfig{}, seg)
	for _, name := range names {
		c, err := NewClient(ClientConfig{Host: ch, Name: name, Addr: name + ":7060", Logf: t.Logf})
		if err != nil {
			t.Fatalf("client stub %s: %v", name, err)
		}
		tier.clients = append(tier.clients, c)
	}
	return tier
}

func TestRPCRoundTrips(t *testing.T) {
	tier := newTestTier(t, 1, 0)
	c := tier.clients[0]

	rec, err := c.Admit(mediator.Requirements{Rate: 800e3, Redundancy: true, ParityShards: 2, Key: "tenant-a"})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if rec.Home != "med-a" || rec.Key != "tenant-a" {
		t.Fatalf("record home=%q key=%q", rec.Home, rec.Key)
	}
	if !rec.Plan.Parity || rec.Plan.ParityShards != 2 || len(rec.Plan.Agents) < 3 {
		t.Fatalf("plan did not survive the wire: %+v", rec.Plan)
	}
	if len(rec.Plan.Addrs) != len(rec.Plan.Agents) {
		t.Fatalf("addrs/agents mismatch: %d vs %d", len(rec.Plan.Addrs), len(rec.Plan.Agents))
	}

	home, err := c.RenewSession(*rec)
	if err != nil {
		t.Fatalf("renew: %v", err)
	}
	if home != "med-a" {
		t.Fatalf("renew home = %q", home)
	}

	st, err := c.Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Name != "med-a" || st.Role != "active" || st.Sessions != 1 || st.HomeSessions != 1 {
		t.Fatalf("status = %+v", st)
	}
	if len(st.AgentReserved) != 6 || st.AgentReserved[rec.Plan.Agents[0]] == 0 {
		t.Fatalf("reservation ratios did not survive the wire: %v", st.AgentReserved)
	}

	if err := c.CloseSession(rec.ID); err != nil {
		t.Fatalf("close: %v", err)
	}
	if tier.meds[0].Sessions() != 0 {
		t.Fatal("session survived the wire close")
	}
}

func TestRPCErrorSentinelsSurviveTheWire(t *testing.T) {
	tier := newTestTier(t, 1, 0)
	c := tier.clients[0]
	if _, err := c.Admit(mediator.Requirements{Rate: 1e12}); !errors.Is(err, mediator.ErrUnsatisfiable) {
		t.Fatalf("unsatisfiable came back as: %v", err)
	}
	if err := c.CloseSession(999); err != nil {
		t.Fatalf("close is idempotent in-process; over the wire: %v", err)
	}
	if _, err := tier.meds[0].Drain(); err == nil {
		// One replica, no peers, no sessions: drain succeeds trivially.
	}
	tier.meds[0].Kill()
	if _, err := c.Admit(mediator.Requirements{Rate: 1e3}); !errors.Is(err, mediator.ErrReplicaDown) {
		t.Fatalf("replica-down came back as: %v", err)
	}
}

func TestWireFederationMirrorsAndFailsOver(t *testing.T) {
	tier := newTestTier(t, 3, time.Minute)
	rec, err := tier.clients[0].Admit(mediator.Requirements{Rate: 400e3, Key: "tenant-a"})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	tier.meds[0].WaitMirrors()
	for i, med := range tier.meds {
		if n := med.Sessions(); n != 1 {
			t.Fatalf("replica %d: sessions = %d after wire mirror", i, n)
		}
	}
	// Crash the home: the server stops answering, the client stub times
	// out, and a renewal against a survivor adopts the session.
	tier.servers[0].Close()
	tier.meds[0].Kill()
	if _, err := tier.clients[0].RenewSession(*rec); !errors.Is(err, ErrMediatorDown) {
		t.Fatalf("renew against crashed replica: %v", err)
	}
	home, err := tier.clients[1].RenewSession(*rec)
	if err != nil {
		t.Fatalf("renew on survivor: %v", err)
	}
	if home != "med-b" {
		t.Fatalf("adopted home = %q, want med-b", home)
	}
	st, err := tier.clients[1].Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Failovers != 1 || st.HomeSessions != 1 {
		t.Fatalf("survivor status = %+v", st)
	}
}

func TestWireDrainHandsOff(t *testing.T) {
	tier := newTestTier(t, 3, time.Minute)
	rec, err := tier.clients[0].Admit(mediator.Requirements{Rate: 400e3, Key: "tenant-a"})
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	tier.meds[0].WaitMirrors()
	handed, err := tier.clients[0].Drain()
	if err != nil {
		t.Fatalf("drain rpc: %v", err)
	}
	if handed != 1 {
		t.Fatalf("handed = %d, want 1", handed)
	}
	home, err := tier.clients[0].RenewSession(*rec)
	if err != nil {
		t.Fatalf("renew on draining replica: %v", err)
	}
	if home == "med-a" {
		t.Fatal("drained replica still claims the session")
	}
	st, err := tier.clients[0].Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Role != "draining" || st.Handoffs != 1 {
		t.Fatalf("status after drain = %+v", st)
	}
	if _, err := tier.clients[0].Admit(mediator.Requirements{Rate: 1e3}); !errors.Is(err, mediator.ErrDraining) {
		t.Fatalf("admit on draining came back as: %v", err)
	}
}

// TestOpenRetransmitDoesNotDoubleAdmit: admission is not idempotent, so
// when the TMedOpenReply is lost and the client retransmits the same
// (source, ReqID), the server must replay the original record instead of
// admitting a second, orphaned session that double-reserves capacity.
func TestOpenRetransmitDoesNotDoubleAdmit(t *testing.T) {
	tier := newTestTier(t, 1, 0)
	conn, err := tier.net.MustHost("raw-client", memnet.HostConfig{}, tier.seg).Listen("0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer conn.Close()
	req := &wire.Packet{
		Header:  wire.Header{Type: wire.TMedOpen, ReqID: 7},
		Payload: wire.AppendMedOpenRequest(nil, &wire.MedOpenRequest{Rate: 1e3, Key: "tenant-a"}),
	}
	buf, err := wire.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	read := func() *wire.Packet {
		t.Helper()
		rbuf := make([]byte, wire.MaxPacket)
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		nn, _, err := conn.ReadFrom(rbuf)
		if err != nil {
			t.Fatalf("read reply: %v", err)
		}
		var pkt wire.Packet
		if err := wire.Unmarshal(rbuf[:nn], &pkt); err != nil {
			t.Fatalf("unmarshal reply: %v", err)
		}
		return &pkt
	}
	if err := conn.WriteTo(buf, "med-a:7060"); err != nil {
		t.Fatalf("send: %v", err)
	}
	r1 := read()
	if err := conn.WriteTo(buf, "med-a:7060"); err != nil { // retransmit, same ReqID
		t.Fatalf("resend: %v", err)
	}
	r2 := read()
	if r1.Type != wire.TMedOpenReply || r2.Type != wire.TMedOpenReply {
		t.Fatalf("reply types %v, %v", r1.Type, r2.Type)
	}
	if r1.Handle != r2.Handle {
		t.Fatalf("retransmit admitted a second session: %#x vs %#x", r1.Handle, r2.Handle)
	}
	if n := tier.meds[0].Sessions(); n != 1 {
		t.Fatalf("sessions = %d after retransmitted open, want 1", n)
	}
}

// TestWireRecordRangeValidation: fields that travel as uint16 must fail
// encoding when out of range, not silently truncate into a corrupt
// record.
func TestWireRecordRangeValidation(t *testing.T) {
	good := mediator.SessionRecord{ID: 1, Plan: mediator.Plan{Agents: []int{0, 65535}, Addrs: []string{"a", "b"}, Rate: 1}}
	if _, err := toWireRecord(&good); err != nil {
		t.Fatalf("in-range record refused: %v", err)
	}
	for name, rec := range map[string]mediator.SessionRecord{
		"agent index too big":   {ID: 2, Plan: mediator.Plan{Agents: []int{70000}}},
		"agent index negative":  {ID: 3, Plan: mediator.Plan{Agents: []int{-1}}},
		"parity shards too big": {ID: 4, Plan: mediator.Plan{ParityShards: 1 << 16}},
	} {
		if _, err := toWireRecord(&rec); err == nil {
			t.Errorf("%s: encoded without error", name)
		}
	}
	if _, err := (&Client{}).RenewSession(mediator.SessionRecord{Plan: mediator.Plan{Agents: []int{70000}}}); err == nil {
		t.Error("client renew encoded an unencodable record")
	}
}

func TestClientRetransmitsThroughLoss(t *testing.T) {
	n := memnet.New(1)
	defer n.Close()
	seg := n.NewSegment("lossy", memnet.SegmentConfig{BandwidthBps: 1e9})
	med, err := mediator.New(mediator.Config{
		Agents: []mediator.AgentInfo{{Addr: "a:1", Rate: 1e6, Net: 0}},
		Nets:   []mediator.NetInfo{{Name: "lossy", Capacity: 1e9}},
		Self:   "med-a",
	})
	if err != nil {
		t.Fatalf("mediator: %v", err)
	}
	defer med.Close()
	srv, err := Serve(ServerConfig{Host: n.MustHost("med-a", memnet.HostConfig{}, seg), Port: "7060", Med: med, Logf: t.Logf})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()
	c, err := NewClient(ClientConfig{
		Host:    n.MustHost("client", memnet.HostConfig{}, seg),
		Name:    "med-a",
		Addr:    "med-a:7060",
		Retries: 10,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	seg.SetLossRate(0.3)
	for i := 0; i < 5; i++ {
		rec, err := c.Admit(mediator.Requirements{Rate: 1e3})
		if err != nil {
			t.Fatalf("admit %d through loss: %v", i, err)
		}
		if err := c.CloseSession(rec.ID); err != nil {
			t.Fatalf("close %d through loss: %v", i, err)
		}
	}
}

// TestOverloadRejectionSurvivesTheWire drives a watermarked replica past
// its admission watermark over the wire and checks the typed rejection —
// sentinel and retry-after hint — is reconstructed client-side.
func TestOverloadRejectionSurvivesTheWire(t *testing.T) {
	n := memnet.New(1)
	defer n.Close()
	seg := n.NewSegment("lab", memnet.SegmentConfig{BandwidthBps: 1e9})
	med, err := mediator.New(mediator.Config{
		Agents:         []mediator.AgentInfo{{Addr: "agent:7070", Rate: 400e3, Net: 0}},
		Nets:           []mediator.NetInfo{{Name: "lab", Capacity: 1e9}},
		AdmitWatermark: 0.5,
	})
	if err != nil {
		t.Fatalf("mediator: %v", err)
	}
	defer med.Close()
	srv, err := Serve(ServerConfig{
		Host: n.MustHost("med", memnet.HostConfig{}, seg),
		Port: "7060",
		Med:  med,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()
	c, err := NewClient(ClientConfig{
		Host: n.MustHost("client", memnet.HostConfig{}, seg),
		Name: "med",
		Addr: "med:7060",
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if _, err := c.Admit(mediator.Requirements{Rate: 300e3}); err != nil {
		t.Fatalf("admit under watermark: %v", err)
	}
	_, err = c.Admit(mediator.Requirements{Rate: 100e3})
	if !errors.Is(err, mediator.ErrOverloaded) {
		t.Fatalf("overload came back as: %v", err)
	}
	var oe *mediator.OverloadedError
	if !errors.As(err, &oe) || oe.RetryAfter < 50*time.Millisecond {
		t.Fatalf("retry-after hint did not survive the wire: %v", err)
	}
}

// TestParseRetryAfter covers the hint parser's malformed-input paths.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		msg  string
		want time.Duration
	}{
		{"mediator: overloaded (retry after 250ms)", 250 * time.Millisecond},
		{"mediator: overloaded (retry after 1.5s)", 1500 * time.Millisecond},
		{"mediator: overloaded", 0},
		{"retry after garbage)", 0},
		{"retry after -5s)", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.msg); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.msg, got, tc.want)
		}
	}
}
