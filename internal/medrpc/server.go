// Package medrpc puts a mediator replica on the wire. It serves the
// TMed* control packets over the same datagram transport the storage
// agents use (one request, one reply, client-driven retransmission), and
// provides the matching client stub, which doubles as the mediator.Peer
// transport for inter-replica session mirroring.
//
// The mediator package itself stays transport-free (and under the
// clockcheck analyzer's no-wall-clock rule); everything that touches
// sockets, deadlines, or retransmission timers lives here.
package medrpc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"swift/internal/mediator"
	"swift/internal/obs"
	"swift/internal/transport"
	"swift/internal/wire"
)

// ServerConfig configures a mediator replica's wire endpoint.
type ServerConfig struct {
	Host transport.Host     // machine to listen on
	Port string             // well-known control port
	Med  *mediator.Mediator // the replica being served
	Logf func(format string, args ...any)
	// Tracer, when non-nil, records mediator-side service spans under
	// the trace contexts client request packets carry. The mediator
	// package itself is clock-free, so the admission/renew spans open
	// here, at the wire seam. Nil disables tracing.
	Tracer *obs.Tracer
}

// replyKey identifies one logical request for retransmit dedup: the
// client stub opens a fresh ephemeral endpoint per RPC and keeps the
// same ReqID across retransmissions of it, so (source address, ReqID)
// is stable for one request and unique across requests.
type replyKey struct {
	from  string
	reqID uint32
}

// openCacheMax bounds the TMedOpen reply cache. The cache only has to
// cover a client's retransmission window (a handful of packets over at
// most a few seconds); FIFO eviction of old entries is plenty.
const openCacheMax = 1024

// Server serves one mediator replica's control port.
type Server struct {
	cfg ServerConfig
	ctl transport.PacketConn

	// lateSheds counts requests whose client-carried deadline budget
	// elapsed while the replica served them: the reply is suppressed (and
	// an admitted session released) because nobody is waiting for it.
	lateSheds atomic.Int64

	mu        sync.Mutex
	closed    bool
	openCache map[replyKey][]byte // marshaled TMedOpenReply per request
	openOrder []replyKey          // FIFO eviction order
	wg        sync.WaitGroup
}

// Serve starts serving cfg.Med on cfg.Host:cfg.Port.
func Serve(cfg ServerConfig) (*Server, error) {
	if cfg.Med == nil {
		return nil, fmt.Errorf("medrpc: no mediator to serve")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ctl, err := cfg.Host.Listen(cfg.Port)
	if err != nil {
		return nil, fmt.Errorf("medrpc: listen %s: %w", cfg.Port, err)
	}
	s := &Server{cfg: cfg, ctl: ctl}
	var lbl obs.Labels
	if name := cfg.Med.Name(); name != "" {
		lbl = obs.Labels{"replica": name}
	}
	cfg.Med.Obs().CounterFunc("swift_medrpc_late_sheds_total",
		"Requests whose client deadline budget elapsed during service; replies suppressed.",
		lbl, func() float64 { return float64(s.lateSheds.Load()) })
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// LateSheds returns how many requests were shed because the client's
// deadline budget elapsed while the replica served them.
func (s *Server) LateSheds() int64 { return s.lateSheds.Load() }

// Addr returns the server's control address.
func (s *Server) Addr() string { return s.ctl.LocalAddr() }

// Close stops serving. The mediator itself is not closed — the owner
// decides whether the replica drains, dies, or moves.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.ctl.Close()
	s.wg.Wait()
	return nil
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) send(to string, p *wire.Packet) {
	buf, err := wire.Marshal(p)
	if err != nil {
		s.cfg.Logf("medrpc %s: marshal %v: %v", s.Addr(), p.Type, err)
		return
	}
	if err := s.ctl.WriteTo(buf, to); err != nil {
		s.cfg.Logf("medrpc %s: send %v to %s: %v", s.Addr(), p.Type, to, err)
	}
}

func (s *Server) sendError(to string, req *wire.Packet, err error) {
	s.send(to, &wire.Packet{
		Header:  wire.Header{Type: wire.TError, ReqID: req.ReqID, Handle: req.Handle},
		Payload: wire.AppendError(nil, err.Error()),
	})
}

// loop serves the control port until Close.
func (s *Server) loop() {
	defer s.wg.Done()
	buf := make([]byte, wire.MaxPacket)
	var pkt wire.Packet
	for {
		s.ctl.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, from, err := s.ctl.ReadFrom(buf)
		if err != nil {
			if transport.IsTimeout(err) {
				if s.isClosed() {
					return
				}
				continue
			}
			return // closed
		}
		if err := wire.Unmarshal(buf[:n], &pkt); err != nil {
			s.cfg.Logf("medrpc %s: bad packet from %s: %v", s.Addr(), from, err)
			continue
		}
		s.handle(from, &pkt)
	}
}

// handle dispatches one request. Every request gets exactly one reply
// (or a TError). Retransmitted requests are re-executed for every
// operation that is idempotent or last-writer-wins (renew, close,
// mirror, status, drain); TMedOpen is neither — re-admitting would
// double-reserve capacity as an orphan session nothing ever renews or
// closes — so successful open replies are cached by (source, ReqID) and
// replayed verbatim when the reply was lost and the client retransmits.
func (s *Server) handle(from string, pkt *wire.Packet) {
	med := s.cfg.Med
	t0 := time.Now()
	switch pkt.Type {
	case wire.TMedOpen:
		sp := s.cfg.Tracer.StartRemote(pkt.Trace, "mediator", "admit", -1)
		defer sp.Finish()
		if buf := s.cachedOpenReply(from, pkt.ReqID); buf != nil {
			sp.Annotate("replayed cached open reply")
			if err := s.ctl.WriteTo(buf, from); err != nil {
				s.cfg.Logf("medrpc %s: resend open reply to %s: %v", s.Addr(), from, err)
			}
			return
		}
		req, err := wire.ParseMedOpenRequest(pkt.Payload)
		if err != nil {
			sp.SetError(err)
			s.sendError(from, pkt, err)
			return
		}
		rec, err := med.Admit(mediator.Requirements{
			Rate:         req.Rate,
			Redundancy:   req.Redundancy,
			ParityShards: int(req.ParityShards),
			Key:          req.Key,
		})
		if err != nil {
			sp.SetError(err)
			s.sendError(from, pkt, err)
			return
		}
		if d := pkt.Deadline; d > 0 && time.Since(t0) > d {
			// The client's whole retry budget elapsed while admission
			// ran: nobody reads this reply, and nothing would ever renew
			// or close the session it carries. Release it instead.
			if cerr := med.CloseSession(rec.ID); cerr != nil {
				s.cfg.Logf("medrpc %s: release shed session %d: %v", s.Addr(), rec.ID, cerr)
			}
			s.lateSheds.Add(1)
			sp.Annotate("shed: client budget %v elapsed during admit", d)
			return
		}
		sp.Annotate("session %d admitted, home %s", rec.ID, rec.Home)
		w, err := toWireRecord(rec)
		if err != nil {
			sp.SetError(err)
			s.sendError(from, pkt, err)
			return
		}
		reply := &wire.Packet{
			Header:  wire.Header{Type: wire.TMedOpenReply, ReqID: pkt.ReqID, Handle: rec.ID},
			Payload: wire.AppendMedRecord(nil, &w),
		}
		buf, err := wire.Marshal(reply)
		if err != nil {
			s.cfg.Logf("medrpc %s: marshal %v: %v", s.Addr(), reply.Type, err)
			return
		}
		s.cacheOpenReply(from, pkt.ReqID, buf)
		if err := s.ctl.WriteTo(buf, from); err != nil {
			s.cfg.Logf("medrpc %s: send %v to %s: %v", s.Addr(), reply.Type, from, err)
		}
	case wire.TMedRenew:
		sp := s.cfg.Tracer.StartRemote(pkt.Trace, "mediator", "renew", -1)
		defer sp.Finish()
		w, err := wire.ParseMedRecord(pkt.Payload)
		if err != nil {
			sp.SetError(err)
			s.sendError(from, pkt, err)
			return
		}
		rec := fromWireRecord(&w)
		home, err := med.RenewSession(rec)
		if err != nil {
			sp.SetError(err)
			s.sendError(from, pkt, err)
			return
		}
		if home != rec.Home {
			// The lease changed hands: this replica adopted (or
			// re-homed) a session whose home was unreachable.
			sp.MarkRetry()
			sp.Annotate("session %d re-homed %s -> %s", rec.ID, rec.Home, home)
		}
		if d := pkt.Deadline; d > 0 && time.Since(t0) > d {
			// Renew is idempotent, so a late one needs no undo — but the
			// client has moved on; don't waste the reply send.
			s.lateSheds.Add(1)
			sp.Annotate("shed: client budget %v elapsed during renew", d)
			return
		}
		s.send(from, &wire.Packet{
			Header:  wire.Header{Type: wire.TMedRenewReply, ReqID: pkt.ReqID, Handle: pkt.Handle},
			Payload: wire.AppendMedHome(nil, &wire.MedHome{Home: home}),
		})
	case wire.TMedClose:
		sp := s.cfg.Tracer.StartRemote(pkt.Trace, "mediator", "close", -1)
		defer sp.Finish()
		if err := med.CloseSession(pkt.Handle); err != nil {
			sp.SetError(err)
			s.sendError(from, pkt, err)
			return
		}
		s.send(from, &wire.Packet{
			Header: wire.Header{Type: wire.TMedCloseReply, ReqID: pkt.ReqID, Handle: pkt.Handle},
		})
	case wire.TMedMirror:
		u, err := wire.ParseMedMirror(pkt.Payload)
		if err != nil {
			s.sendError(from, pkt, err)
			return
		}
		err = med.ApplyMirror(mediator.MirrorUpdate{
			Op:   mediator.MirrorOp(u.Op),
			Rec:  fromWireRecord(&u.Rec),
			From: u.From,
		})
		if err != nil {
			s.sendError(from, pkt, err)
			return
		}
		s.send(from, &wire.Packet{
			Header: wire.Header{Type: wire.TMedMirrorReply, ReqID: pkt.ReqID, Handle: pkt.Handle},
		})
	case wire.TMedInvalidate:
		req, err := wire.ParseMedCacheSync(pkt.Payload)
		if err != nil {
			s.sendError(from, pkt, err)
			return
		}
		cached := make([]mediator.CachedObject, 0, len(req.Cached))
		for _, o := range req.Cached {
			cached = append(cached, mediator.CachedObject{Name: o.Name, Gen: o.Gen})
		}
		stale, err := med.CacheSync(req.Session, cached, req.Written)
		if err != nil {
			s.sendError(from, pkt, err)
			return
		}
		var w wire.MedCacheSyncReply
		for _, o := range stale {
			w.Stale = append(w.Stale, wire.MedCachedObject{Name: o.Name, Gen: o.Gen})
		}
		if d := pkt.Deadline; d > 0 && time.Since(t0) > d {
			// The round is idempotent-enough to shed: an unanswered sync
			// leaves the client's written set declared again next round.
			s.lateSheds.Add(1)
			return
		}
		s.send(from, &wire.Packet{
			Header:  wire.Header{Type: wire.TMedInvalidateReply, ReqID: pkt.ReqID, Handle: pkt.Handle},
			Payload: wire.AppendMedCacheSyncReply(nil, &w),
		})
	case wire.TMedStatus:
		st, err := med.Status()
		if err != nil {
			s.sendError(from, pkt, err)
			return
		}
		w := toWireStatus(&st)
		s.send(from, &wire.Packet{
			Header:  wire.Header{Type: wire.TMedStatusReply, ReqID: pkt.ReqID},
			Payload: wire.AppendMedStatus(nil, &w),
		})
	case wire.TMedDrain:
		handed, err := med.Drain()
		if err != nil {
			s.sendError(from, pkt, err)
			return
		}
		s.send(from, &wire.Packet{
			Header: wire.Header{Type: wire.TMedDrainReply, ReqID: pkt.ReqID, Length: uint32(handed)},
		})
	default:
		s.sendError(from, pkt, fmt.Errorf("medrpc: unexpected %v on mediator port", pkt.Type))
	}
}

// cachedOpenReply returns the marshaled reply previously sent for this
// (source, ReqID), or nil on a first-seen request.
func (s *Server) cachedOpenReply(from string, reqID uint32) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.openCache[replyKey{from, reqID}]
}

// cacheOpenReply remembers a successful open reply for retransmit
// replay, evicting the oldest entries past openCacheMax.
func (s *Server) cacheOpenReply(from string, reqID uint32, buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.openCache == nil {
		s.openCache = make(map[replyKey][]byte)
	}
	k := replyKey{from, reqID}
	if _, ok := s.openCache[k]; !ok {
		s.openOrder = append(s.openOrder, k)
	}
	s.openCache[k] = buf
	for len(s.openOrder) > openCacheMax {
		delete(s.openCache, s.openOrder[0])
		s.openOrder = s.openOrder[1:]
	}
}

// toWireRecord flattens a session record for the wire, validating that
// every field fits its wire form — agent indices and the agent/addr
// counts travel as uint16 — and failing instead of silently truncating
// into a corrupt record.
func toWireRecord(r *mediator.SessionRecord) (wire.MedRecord, error) {
	if len(r.Plan.Agents) > 0xFFFF || len(r.Plan.Addrs) > 0xFFFF {
		return wire.MedRecord{}, fmt.Errorf("medrpc: session %d: plan with %d agents / %d addrs exceeds the wire's uint16 counts",
			r.ID, len(r.Plan.Agents), len(r.Plan.Addrs))
	}
	if r.Plan.ParityShards < 0 || r.Plan.ParityShards > 0xFFFF {
		return wire.MedRecord{}, fmt.Errorf("medrpc: session %d: parity shards %d not encodable as uint16",
			r.ID, r.Plan.ParityShards)
	}
	w := wire.MedRecord{
		ID:     r.ID,
		Key:    r.Key,
		Home:   r.Home,
		Unit:   r.Plan.Unit,
		Parity: r.Plan.Parity,
		Shards: uint16(r.Plan.ParityShards),
		Rate:   r.Plan.Rate,
		Addrs:  append([]string(nil), r.Plan.Addrs...),
	}
	if !r.Expires.IsZero() {
		w.Expires = r.Expires.UnixNano()
	}
	w.Agents = make([]uint16, len(r.Plan.Agents))
	for i, a := range r.Plan.Agents {
		if a < 0 || a > 0xFFFF {
			return wire.MedRecord{}, fmt.Errorf("medrpc: session %d: agent index %d not encodable as uint16", r.ID, a)
		}
		w.Agents[i] = uint16(a)
	}
	return w, nil
}

// fromWireRecord rebuilds a session record from its wire form.
func fromWireRecord(w *wire.MedRecord) mediator.SessionRecord {
	r := mediator.SessionRecord{
		ID:   w.ID,
		Key:  w.Key,
		Home: w.Home,
		Plan: mediator.Plan{
			SessionID:    w.ID,
			Unit:         w.Unit,
			Parity:       w.Parity,
			ParityShards: int(w.Shards),
			Rate:         w.Rate,
			Addrs:        append([]string(nil), w.Addrs...),
		},
	}
	if w.Expires != 0 {
		r.Expires = time.Unix(0, w.Expires)
	}
	r.Plan.Agents = make([]int, len(w.Agents))
	for i, a := range w.Agents {
		r.Plan.Agents[i] = int(a)
	}
	return r
}

// toWireStatus flattens a replica status for the wire.
func toWireStatus(st *mediator.ReplicaStatus) wire.MedStatus {
	w := wire.MedStatus{
		Name:          st.Name,
		Role:          st.Role,
		Sessions:      uint32(st.Sessions),
		HomeSessions:  uint32(st.HomeSessions),
		Failovers:     uint64(st.Failovers),
		Handoffs:      uint64(st.Handoffs),
		Expirations:   uint64(st.Expirations),
		AgentReserved: append([]float64(nil), st.AgentReserved...),
		NetReserved:   append([]float64(nil), st.NetReserved...),
	}
	if !st.LastHandoff.IsZero() {
		w.LastHandoff = st.LastHandoff.UnixNano()
	}
	return w
}

// fromWireStatus rebuilds a replica status from its wire form.
func fromWireStatus(w *wire.MedStatus) mediator.ReplicaStatus {
	st := mediator.ReplicaStatus{
		Name:          w.Name,
		Role:          w.Role,
		Sessions:      int(w.Sessions),
		HomeSessions:  int(w.HomeSessions),
		Failovers:     int64(w.Failovers),
		Handoffs:      int64(w.Handoffs),
		Expirations:   int64(w.Expirations),
		AgentReserved: append([]float64(nil), w.AgentReserved...),
		NetReserved:   append([]float64(nil), w.NetReserved...),
	}
	if w.LastHandoff != 0 {
		st.LastHandoff = time.Unix(0, w.LastHandoff)
	}
	return st
}
