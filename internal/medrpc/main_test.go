package medrpc

import (
	"testing"

	"swift/internal/testutil/leakcheck"
)

// TestMain fails the binary if any test leaks a goroutine: the server's
// per-conn serve loops and the client's retry timers must all stop when
// their test closes them.
func TestMain(m *testing.M) { leakcheck.Main(m) }
