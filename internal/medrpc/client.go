package medrpc

import (
	"errors"
	"fmt"
	"strings"

	"sync/atomic"
	"time"

	"swift/internal/backoff"
	"swift/internal/mediator"
	"swift/internal/obs"
	"swift/internal/transport"
	"swift/internal/wire"
)

// ErrMediatorDown is returned when a replica stops answering within the
// client's retry budget.
var ErrMediatorDown = errors.New("medrpc: mediator not responding")

// ClientConfig configures one replica's client stub.
type ClientConfig struct {
	Host transport.Host // local machine to open the endpoint on
	Name string         // replica name (placement identity)
	Addr string         // replica control address

	// RetryTimeout is the initial retransmission timeout (default 50ms);
	// it backs off exponentially, capped at MaxRetryTimeout (default
	// 400ms), with Retries (default 4) retransmissions before giving up.
	// Mediator RPCs fail fast by design: a dead replica must be detected
	// well inside a lease TTL so the broker can rotate to a peer.
	RetryTimeout    time.Duration
	MaxRetryTimeout time.Duration
	Retries         int
	Logf            func(format string, args ...any)
}

// Client is the wire stub for one mediator replica. It satisfies the
// client-side endpoint surface (Admit/RenewSession/CloseSession/Status)
// and mediator.Peer (Mirror), so replicas federate over the same stub
// clients use.
type Client struct {
	cfg   ClientConfig
	bo    *backoff.Policy
	reqID atomic.Uint32

	// rpcBudget is the deterministic total retry budget (unjittered sum
	// of the per-attempt timeouts): each attempt's request carries the
	// remaining fraction as its deadline so the replica can skip work and
	// suppress replies the client has already given up on.
	rpcBudget time.Duration
}

// NewClient builds a stub for the replica at cfg.Addr. Each RPC opens an
// ephemeral endpoint, so concurrent RPCs (a heartbeat racing a status
// query) never serialize or interleave replies.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = 50 * time.Millisecond
	}
	if cfg.MaxRetryTimeout <= 0 {
		cfg.MaxRetryTimeout = 400 * time.Millisecond
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 4
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Name == "" {
		cfg.Name = cfg.Addr
	}
	c := &Client{cfg: cfg, bo: backoff.New(cfg.RetryTimeout, cfg.MaxRetryTimeout)}
	for attempt := 0; attempt <= cfg.Retries; attempt++ {
		d := cfg.RetryTimeout << uint(attempt)
		if d > cfg.MaxRetryTimeout {
			d = cfg.MaxRetryTimeout
		}
		c.rpcBudget += d
	}
	return c, nil
}

// Name returns the replica's placement name.
func (c *Client) Name() string { return c.cfg.Name }

// Addr returns the replica's control address.
func (c *Client) Addr() string { return c.cfg.Addr }

// Close releases the stub. RPC endpoints are per-call, so there is
// nothing persistent to tear down; Close exists for lifecycle symmetry.
func (c *Client) Close() error { return nil }

// backoff is the retransmission timeout for the given attempt: capped
// exponential with ±25% jitter, like the data-path client's.
func (c *Client) backoff(attempt int) time.Duration { return c.bo.Delay(attempt) }

// rpc sends one request and waits for its reply, retransmitting on
// timeout until the retry budget is spent.
func (c *Client) rpc(req *wire.Packet) (*wire.Packet, error) {
	reqID := c.reqID.Add(1)
	req.ReqID = reqID
	conn, err := c.cfg.Host.Listen("0")
	if err != nil {
		return nil, fmt.Errorf("medrpc: open endpoint: %w", err)
	}
	defer conn.Close()
	giveUp := time.Now().Add(c.rpcBudget)
	rbuf := make([]byte, wire.MaxPacket)
	var pkt wire.Packet
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		// Each attempt carries the remaining budget: a replica that
		// dequeues the request after the client's final give-up sheds it
		// instead of doing admission work for a reply nobody reads.
		if rem := time.Until(giveUp); rem > 0 {
			req.Deadline = rem
		} else {
			req.Deadline = 0
		}
		buf, err := wire.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("medrpc: marshal %v: %w", req.Type, err)
		}
		if err := conn.WriteTo(buf, c.cfg.Addr); err != nil {
			return nil, fmt.Errorf("medrpc: send %v to %s: %w", req.Type, c.cfg.Addr, err)
		}
		deadline := time.Now().Add(c.backoff(attempt))
		for {
			conn.SetReadDeadline(deadline)
			n, _, err := conn.ReadFrom(rbuf)
			if err != nil {
				if transport.IsTimeout(err) {
					break // retransmit
				}
				return nil, fmt.Errorf("medrpc: recv from %s: %w", c.cfg.Addr, err)
			}
			if err := wire.Unmarshal(rbuf[:n], &pkt); err != nil {
				continue
			}
			if pkt.ReqID != reqID {
				continue // stale reply from an earlier attempt
			}
			if pkt.Type == wire.TError {
				return nil, mapRemote(wire.ParseError(pkt.Payload))
			}
			out := pkt
			out.Payload = append([]byte(nil), pkt.Payload...)
			return &out, nil
		}
	}
	return nil, fmt.Errorf("%w: %s (%s)", ErrMediatorDown, c.cfg.Name, c.cfg.Addr)
}

// mapRemote re-sentinels mediator errors that crossed the wire as text,
// so callers can errors.Is them exactly as with an in-process mediator.
func mapRemote(err error) error {
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		return err
	}
	if strings.Contains(re.Msg, mediator.ErrOverloaded.Error()) {
		// Reconstruct the typed rejection so the broker sees the pacing
		// hint: the mediator encodes it as a "retry after <duration>"
		// suffix in the error text.
		return &mediator.OverloadedError{RetryAfter: parseRetryAfter(re.Msg)}
	}
	for _, sentinel := range []error{
		mediator.ErrDraining,
		mediator.ErrReplicaDown,
		mediator.ErrUnknownSession,
		mediator.ErrUnsatisfiable,
	} {
		if strings.Contains(re.Msg, sentinel.Error()) {
			return fmt.Errorf("%w (via %s)", sentinel, "medrpc")
		}
	}
	return fmt.Errorf("medrpc: remote: %w", err)
}

// parseRetryAfter extracts the "retry after <duration>" hint from an
// overload rejection's text. Malformed or absent hints yield zero; the
// broker substitutes its own backoff.
func parseRetryAfter(msg string) time.Duration {
	const marker = "retry after "
	i := strings.Index(msg, marker)
	if i < 0 {
		return 0
	}
	rest := msg[i+len(marker):]
	if j := strings.IndexByte(rest, ')'); j >= 0 {
		rest = rest[:j]
	}
	d, err := time.ParseDuration(rest)
	if err != nil || d < 0 {
		return 0
	}
	return d
}

// Admit opens a session on the replica.
func (c *Client) Admit(req mediator.Requirements) (*mediator.SessionRecord, error) {
	return c.AdmitTraced(req, obs.SpanContext{})
}

// AdmitTraced is Admit with the caller's trace context carried on the
// TMedOpen packet, so the serving replica's admission span joins the
// client op's trace. The broker upgrades to it via type assertion.
func (c *Client) AdmitTraced(req mediator.Requirements, ctx obs.SpanContext) (*mediator.SessionRecord, error) {
	shards := req.ParityShards
	if shards < 0 || shards > 0xFFFF {
		return nil, fmt.Errorf("%w: parity shards %d not encodable", mediator.ErrUnsatisfiable, shards)
	}
	reply, err := c.rpc(&wire.Packet{
		Header: wire.Header{Type: wire.TMedOpen},
		Trace:  ctx,
		Payload: wire.AppendMedOpenRequest(nil, &wire.MedOpenRequest{
			Rate:         req.Rate,
			Redundancy:   req.Redundancy,
			ParityShards: uint16(shards),
			Key:          req.Key,
		}),
	})
	if err != nil {
		return nil, err
	}
	w, err := wire.ParseMedRecord(reply.Payload)
	if err != nil {
		return nil, fmt.Errorf("medrpc: open reply: %w", err)
	}
	rec := fromWireRecord(&w)
	return &rec, nil
}

// RenewSession renews-or-adopts the session on the replica, returning
// the replica name now responsible for the lease.
func (c *Client) RenewSession(rec mediator.SessionRecord) (string, error) {
	return c.RenewSessionTraced(rec, obs.SpanContext{})
}

// RenewSessionTraced is RenewSession with the caller's trace context
// carried on the TMedRenew packet.
func (c *Client) RenewSessionTraced(rec mediator.SessionRecord, ctx obs.SpanContext) (string, error) {
	w, err := toWireRecord(&rec)
	if err != nil {
		return "", err
	}
	reply, err := c.rpc(&wire.Packet{
		Header:  wire.Header{Type: wire.TMedRenew, Handle: rec.ID},
		Trace:   ctx,
		Payload: wire.AppendMedRecord(nil, &w),
	})
	if err != nil {
		return "", err
	}
	h, err := wire.ParseMedHome(reply.Payload)
	if err != nil {
		return "", fmt.Errorf("medrpc: renew reply: %w", err)
	}
	return h.Home, nil
}

// CloseSession releases the session on the replica.
func (c *Client) CloseSession(id uint64) error {
	_, err := c.rpc(&wire.Packet{Header: wire.Header{Type: wire.TMedClose, Handle: id}})
	return err
}

// CacheSync runs one cache-coherence round on the replica: declare the
// cached objects (with the generations their images reflect) and the
// objects written since the last successful round; the reply is the
// stale set to drop (and the client's own writes to adopt).
func (c *Client) CacheSync(id uint64, cached []mediator.CachedObject, written []string) ([]mediator.CachedObject, error) {
	req := wire.MedCacheSync{Session: id, Written: written}
	for _, co := range cached {
		req.Cached = append(req.Cached, wire.MedCachedObject{Name: co.Name, Gen: co.Gen})
	}
	reply, err := c.rpc(&wire.Packet{
		Header:  wire.Header{Type: wire.TMedInvalidate, Handle: id},
		Payload: wire.AppendMedCacheSync(nil, &req),
	})
	if err != nil {
		return nil, err
	}
	r, err := wire.ParseMedCacheSyncReply(reply.Payload)
	if err != nil {
		return nil, fmt.Errorf("medrpc: cache sync reply: %w", err)
	}
	var stale []mediator.CachedObject
	for _, o := range r.Stale {
		stale = append(stale, mediator.CachedObject{Name: o.Name, Gen: o.Gen})
	}
	return stale, nil
}

// Status queries the replica's operator-facing state.
func (c *Client) Status() (mediator.ReplicaStatus, error) {
	reply, err := c.rpc(&wire.Packet{Header: wire.Header{Type: wire.TMedStatus}})
	if err != nil {
		return mediator.ReplicaStatus{}, err
	}
	w, err := wire.ParseMedStatus(reply.Payload)
	if err != nil {
		return mediator.ReplicaStatus{}, fmt.Errorf("medrpc: status reply: %w", err)
	}
	return fromWireStatus(&w), nil
}

// Drain asks the replica to hand its live sessions to peers, returning
// how many it handed off.
func (c *Client) Drain() (int, error) {
	reply, err := c.rpc(&wire.Packet{Header: wire.Header{Type: wire.TMedDrain}})
	if err != nil {
		return 0, err
	}
	return int(reply.Length), nil
}

// Mirror delivers one replication update — the mediator.Peer
// implementation that federates replicas over the wire.
func (c *Client) Mirror(u mediator.MirrorUpdate) error {
	rec, err := toWireRecord(&u.Rec)
	if err != nil {
		return err
	}
	w := wire.MedMirror{Op: uint8(u.Op), From: u.From, Rec: rec}
	_, err = c.rpc(&wire.Packet{
		Header:  wire.Header{Type: wire.TMedMirror, Handle: u.Rec.ID},
		Payload: wire.AppendMedMirror(nil, &w),
	})
	return err
}
