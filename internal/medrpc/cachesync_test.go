package medrpc

import (
	"errors"
	"testing"
	"time"

	"swift/internal/mediator"
)

// TestCacheSyncRoundTrips drives the TMedInvalidate exchange over the
// wire: declared writes come back as generation adoptions, a stale
// cached image is named in the reply, and a current one is not.
func TestCacheSyncRoundTrips(t *testing.T) {
	tier := newTestTier(t, 1, 0)
	c := tier.clients[0]

	wrec, err := c.Admit(mediator.Requirements{Rate: 100e3, Key: "writer"})
	if err != nil {
		t.Fatalf("admit writer: %v", err)
	}
	rrec, err := c.Admit(mediator.Requirements{Rate: 100e3, Key: "reader"})
	if err != nil {
		t.Fatalf("admit reader: %v", err)
	}

	// The writer declares a write: the reply echoes the object at its
	// new generation so the writer adopts it instead of invalidating.
	stale, err := c.CacheSync(wrec.ID, nil, []string{"video"})
	if err != nil {
		t.Fatalf("writer sync: %v", err)
	}
	if len(stale) != 1 || stale[0].Name != "video" || stale[0].Gen != 1 {
		t.Fatalf("writer reply = %+v, want video@1", stale)
	}

	// A reader caching generation 0 is told its image is stale.
	stale, err = c.CacheSync(rrec.ID, []mediator.CachedObject{{Name: "video", Gen: 0}}, nil)
	if err != nil {
		t.Fatalf("reader sync: %v", err)
	}
	if len(stale) != 1 || stale[0].Name != "video" || stale[0].Gen != 1 {
		t.Fatalf("reader reply = %+v, want video@1", stale)
	}

	// Caught up: a current image draws no invalidation.
	stale, err = c.CacheSync(rrec.ID, []mediator.CachedObject{{Name: "video", Gen: 1}}, nil)
	if err != nil {
		t.Fatalf("caught-up sync: %v", err)
	}
	if len(stale) != 0 {
		t.Fatalf("caught-up reply = %+v, want empty", stale)
	}
}

// TestCacheSyncUnknownSessionSentinel pins that ErrUnknownSession
// survives the wire — the client side relies on errors.Is to drop its
// lease rather than retrying forever.
func TestCacheSyncUnknownSessionSentinel(t *testing.T) {
	tier := newTestTier(t, 1, 0)
	_, err := tier.clients[0].CacheSync(999, nil, []string{"video"})
	if !errors.Is(err, mediator.ErrUnknownSession) {
		t.Fatalf("err = %v, want ErrUnknownSession", err)
	}
}

// TestCacheSyncGenerationCrossesMirrors pins the federation story: a
// write declared on one replica invalidates a reader homed on a peer,
// once the asynchronous mirror lands.
func TestCacheSyncGenerationCrossesMirrors(t *testing.T) {
	tier := newTestTier(t, 2, 0)
	wc, rc := tier.clients[0], tier.clients[1]

	wrec, err := wc.Admit(mediator.Requirements{Rate: 100e3, Key: "w"})
	if err != nil {
		t.Fatalf("admit writer: %v", err)
	}
	rrec, err := rc.Admit(mediator.Requirements{Rate: 100e3, Key: "r"})
	if err != nil {
		t.Fatalf("admit reader: %v", err)
	}
	if _, err := wc.CacheSync(wrec.ID, nil, []string{"shared"}); err != nil {
		t.Fatalf("writer sync: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		stale, err := rc.CacheSync(rrec.ID, []mediator.CachedObject{{Name: "shared", Gen: 0}}, nil)
		if err != nil {
			t.Fatalf("reader sync: %v", err)
		}
		if len(stale) == 1 && stale[0].Name == "shared" && stale[0].Gen >= 1 {
			return // the mirror landed; the peer-homed reader heard the write
		}
		if time.Now().After(deadline) {
			t.Fatalf("generation bump never crossed the mirror channel (last reply %+v)", stale)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
