package backoff

import (
	"testing"
	"time"
)

// TestDelayBounds: every level's delay stays within ±25% of the capped
// exponential schedule, and levels past the cap never exceed max+25%.
func TestDelayBounds(t *testing.T) {
	base := 50 * time.Millisecond
	max := 400 * time.Millisecond
	p := NewSeeded(base, max, 1)
	for level := 0; level < 12; level++ {
		want := base
		for i := 0; i < level && want < max; i++ {
			want *= 2
		}
		if want > max {
			want = max
		}
		for trial := 0; trial < 100; trial++ {
			d := p.Delay(level)
			lo, hi := want-want/4, want+want/4
			if d < lo || d > hi {
				t.Fatalf("level %d trial %d: delay %v outside [%v, %v]", level, trial, d, lo, hi)
			}
		}
	}
}

// TestDelayDeterministic: the same seed reproduces the same jitter
// stream exactly.
func TestDelayDeterministic(t *testing.T) {
	a := NewSeeded(time.Millisecond, 8*time.Millisecond, 42)
	b := NewSeeded(time.Millisecond, 8*time.Millisecond, 42)
	for i := 0; i < 200; i++ {
		da, db := a.Delay(i%6), b.Delay(i%6)
		if da != db {
			t.Fatalf("draw %d: %v != %v with identical seeds", i, da, db)
		}
	}
}

// TestPerInstanceSeeding: two policies from New draw distinct jitter
// streams — the shared-generator bug this package exists to fix.
func TestPerInstanceSeeding(t *testing.T) {
	a := New(time.Second, 8*time.Second)
	b := New(time.Second, 8*time.Second)
	same := 0
	const n = 64
	for i := 0; i < n; i++ {
		if a.Delay(0) == b.Delay(0) {
			same++
		}
	}
	if same == n {
		t.Fatalf("two New policies drew %d identical delays: shared jitter stream", n)
	}
}

// TestNoJitterBelowResolution: a base too small to carry 25% jitter is
// returned unmodified instead of panicking in the jitter draw.
func TestNoJitterBelowResolution(t *testing.T) {
	p := NewSeeded(2, 8, 7) // 2ns base: d/4 == 0
	if d := p.Delay(0); d != 2 {
		t.Fatalf("sub-resolution delay = %v, want 2ns unjittered", d)
	}
}

// TestCapHolds: very large levels saturate at max (±25%) instead of
// overflowing the doubling loop.
func TestCapHolds(t *testing.T) {
	max := 400 * time.Millisecond
	p := NewSeeded(50*time.Millisecond, max, 9)
	for i := 0; i < 100; i++ {
		d := p.Delay(1 << 20)
		if d < max-max/4 || d > max+max/4 {
			t.Fatalf("saturated delay %v outside [%v, %v]", d, max-max/4, max+max/4)
		}
	}
}
