// Package backoff implements the capped exponential retransmission
// backoff with jitter that every Swift retry path shares: the data-path
// client's burst retransmissions, the mediator broker's replica walks,
// and medrpc's RPC retransmits.
//
// A Policy doubles a base delay per backoff level, caps it at a
// maximum, and adds ±25% jitter so independent clients that timed out
// together do not retransmit together (the classic synchronized-retry
// stampede). Each Policy owns its own jitter stream, seeded uniquely
// per instance: policies created in the same process never share a
// generator, so one client's draw order cannot skew another's, and a
// test can pin the stream with NewSeeded.
package backoff

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// seedCounter distinguishes per-instance seeds without consulting the
// wall clock (Policy stays usable from clock-free model packages).
var seedCounter atomic.Uint64

// splitmix64 mixes a counter value into a well-distributed seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Policy computes retransmission delays: capped exponential growth from
// a base with ±25% jitter. Safe for concurrent use.
type Policy struct {
	base time.Duration
	max  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// New returns a Policy doubling from base up to max, with a jitter
// stream seeded uniquely for this instance.
func New(base, max time.Duration) *Policy {
	return NewSeeded(base, max, splitmix64(seedCounter.Add(1)))
}

// NewSeeded is New with an explicit jitter seed, for deterministic
// tests.
func NewSeeded(base, max time.Duration, seed uint64) *Policy {
	return &Policy{
		base: base,
		max:  max,
		rng:  rand.New(rand.NewSource(int64(seed))),
	}
}

// Base returns the policy's initial delay.
func (p *Policy) Base() time.Duration { return p.base }

// Max returns the policy's delay cap (before jitter).
func (p *Policy) Max() time.Duration { return p.max }

// Delay returns the delay for the given backoff level: base doubled
// level times, capped at max, ±25% jitter. Level 0 is the first
// attempt's delay.
func (p *Policy) Delay(level int) time.Duration {
	d := p.base
	for i := 0; i < level && d < p.max; i++ {
		d *= 2
	}
	if d > p.max {
		d = p.max
	}
	return p.Jitter(d)
}

// Jitter returns d with the policy's ±25% jitter applied — for pacing
// hints handed down by a server (a retry-after) that every client would
// otherwise honor in lockstep, re-synchronizing the stampede the hint
// was meant to break up.
func (p *Policy) Jitter(d time.Duration) time.Duration {
	if j := int64(d / 4); j > 0 {
		p.mu.Lock()
		d += time.Duration(p.rng.Int63n(2*j+1) - j)
		p.mu.Unlock()
	}
	return d
}
