package agent

import (
	"time"

	"swift/internal/obs"
)

// telemetry is the storage agent's observability surface: request service
// time histograms, traffic counters and a trace-event ring. Instruments
// are registered once in New; recording is atomic on the data path.
type telemetry struct {
	reg   *obs.Registry
	trace *obs.TraceRing

	opens        *obs.Counter   // open requests accepted
	openRejects  *obs.Counter   // opens rejected (session cap, store errors)
	sessions     *obs.Gauge     // live sessions
	readReqs     *obs.Counter   // read requests served
	readBytes    *obs.Counter   // payload bytes streamed out
	readServeLat *obs.Histogram // serveRead duration (disk + transmit)
	writeBursts  *obs.Counter   // write bursts completed
	writeBytes   *obs.Counter   // payload bytes received and applied
	writeLat     *obs.Histogram // announce (or first data) → completion
	resendReqs   *obs.Counter   // resend prompts sent to clients
	syncLat      *obs.Histogram // store sync latency
	dataPackets  *obs.Counter   // data packets received
	badPackets   *obs.Counter   // undecodable packets
	idleReaps    *obs.Counter   // sessions torn down by the idle timer
	corruptErrs  *obs.Counter   // at-rest corruption detected by the store
	earlyData    *obs.Counter   // data packets dropped for lack of an announce
	shedDeadline *obs.Counter   // reads shed: propagated deadline already spent
	shedQueue    *obs.Counter   // reads shed: service queue over admission quota
	pushbacks    *obs.Counter   // explicit pushback replies sent
}

// newAgentTelemetry builds and registers the agent's instruments.
func newAgentTelemetry(reg *obs.Registry) *telemetry {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &telemetry{
		reg:          reg,
		trace:        obs.NewTraceRing(512),
		opens:        reg.Counter("swift_agent_opens_total", "Open requests accepted.", nil),
		openRejects:  reg.Counter("swift_agent_open_rejects_total", "Open requests rejected.", nil),
		sessions:     reg.Gauge("swift_agent_sessions", "Live file sessions.", nil),
		readReqs:     reg.Counter("swift_agent_read_requests_total", "Read requests served.", nil),
		readBytes:    reg.Counter("swift_agent_read_bytes_total", "Payload bytes streamed to clients.", nil),
		readServeLat: reg.Histogram("swift_agent_read_serve_seconds", "Read request service time (store fetch + transmit).", nil),
		writeBursts:  reg.Counter("swift_agent_write_bursts_total", "Write bursts completed.", nil),
		writeBytes:   reg.Counter("swift_agent_write_bytes_total", "Payload bytes received and applied.", nil),
		writeLat:     reg.Histogram("swift_agent_write_burst_seconds", "Write burst completion time (first sight to ack).", nil),
		resendReqs:   reg.Counter("swift_agent_resend_requests_total", "Resend prompts sent to clients.", nil),
		syncLat:      reg.Histogram("swift_agent_sync_seconds", "Store sync (stable-write) latency.", nil),
		dataPackets:  reg.Counter("swift_agent_data_packets_total", "Data packets received.", nil),
		badPackets:   reg.Counter("swift_agent_bad_packets_total", "Undecodable packets dropped.", nil),
		idleReaps:    reg.Counter("swift_agent_idle_reaps_total", "Sessions torn down by the idle timer.", nil),
		corruptErrs:  reg.Counter("swift_agent_corruptions_total", "At-rest corruption errors surfaced by the store.", nil),
		earlyData:    reg.Counter("swift_agent_early_data_total", "Write data packets dropped for lack of an announce.", nil),
		shedDeadline: reg.Counter("swift_agent_shed_deadline_total", "Read requests shed because their propagated deadline was already spent.", nil),
		shedQueue:    reg.Counter("swift_agent_shed_queue_total", "Read requests shed by the bounded service queue.", nil),
		pushbacks:    reg.Counter("swift_agent_pushbacks_total", "Explicit pushback replies sent to clients.", nil),
	}
}

// Obs returns the agent's metric registry, for export.
func (a *Agent) Obs() *obs.Registry { return a.tel.reg }

// Trace returns the agent's trace-event ring.
func (a *Agent) Trace() *obs.TraceRing { return a.tel.trace }

// traceEvent emits a structured trace event into the agent's ring (and,
// with Verbose, to Logf via the ring's sink).
func (a *Agent) traceEvent(kind string, format string, args ...any) {
	a.tel.trace.Emitf("agent", kind, -1, format, args...)
}

// syncTimed wraps a store sync with latency recording.
func (a *Agent) syncTimed(sync func() error) error {
	start := time.Now()
	err := sync()
	a.tel.syncLat.Observe(time.Since(start))
	return err
}
