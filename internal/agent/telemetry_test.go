package agent

import (
	"strings"
	"testing"
	"time"

	"swift/internal/obs"
	"swift/internal/wire"
)

// TestAgentTelemetryAdvance: a read and a write burst through the raw
// protocol must advance the agent's service-time histograms and traffic
// counters, and the series must appear in a shared registry's export.
func TestAgentTelemetryAdvance(t *testing.T) {
	reg := obs.NewRegistry()
	r := newRig(t, Config{Obs: reg})

	sess, h := r.open("tele", wire.FCreate)

	// One write burst: announce + data, wait for the ack.
	payload := []byte("telemetry payload")
	id := r.nextReq()
	r.send(sess, &wire.Packet{
		Header: wire.Header{Type: wire.TWrite, ReqID: id, Handle: h,
			Offset: 0, Length: uint32(len(payload))},
	})
	r.send(sess, &wire.Packet{
		Header: wire.Header{Type: wire.TData, ReqID: id, Handle: h,
			Offset: 0, Length: uint32(len(payload))},
		Payload: payload,
	})
	if ack := r.recv(time.Second); ack == nil || ack.Type != wire.TWriteAck {
		t.Fatalf("no write ack: %+v", ack)
	}

	// One read request, drain the data packets.
	id = r.nextReq()
	r.send(sess, &wire.Packet{
		Header: wire.Header{Type: wire.TRead, ReqID: id, Handle: h,
			Offset: 0, Length: uint32(len(payload))},
	})
	if pkt := r.recv(time.Second); pkt == nil || pkt.Type != wire.TData {
		t.Fatalf("no read data: %+v", pkt)
	}

	tel := r.agent.tel
	if tel.opens.Load() != 1 {
		t.Errorf("opens = %d, want 1", tel.opens.Load())
	}
	if tel.sessions.Load() != 1 {
		t.Errorf("sessions gauge = %d, want 1", tel.sessions.Load())
	}
	if tel.readReqs.Load() != 1 || tel.readBytes.Load() != int64(len(payload)) {
		t.Errorf("read telemetry: reqs=%d bytes=%d", tel.readReqs.Load(), tel.readBytes.Load())
	}
	if tel.readServeLat.Count() != 1 {
		t.Errorf("read serve histogram count = %d, want 1", tel.readServeLat.Count())
	}
	if tel.writeBursts.Load() != 1 || tel.writeBytes.Load() != int64(len(payload)) {
		t.Errorf("write telemetry: bursts=%d bytes=%d", tel.writeBursts.Load(), tel.writeBytes.Load())
	}
	if tel.writeLat.Count() != 1 {
		t.Errorf("write burst histogram count = %d, want 1", tel.writeLat.Count())
	}
	if tel.dataPackets.Load() != 1 {
		t.Errorf("data packets = %d, want 1", tel.dataPackets.Load())
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"swift_agent_opens_total 1",
		"swift_agent_sessions 1",
		"swift_agent_read_serve_seconds_count 1",
		"swift_agent_write_bursts_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}
}

// TestAgentOpenRejectCounted: opens beyond MaxSessions must be counted as
// rejects and traced.
func TestAgentOpenRejectCounted(t *testing.T) {
	r := newRig(t, Config{MaxSessions: 1})
	r.open("one", wire.FCreate)

	id := r.nextReq()
	r.send(r.agent.Addr(), &wire.Packet{
		Header:  wire.Header{Type: wire.TOpen, ReqID: id, Flags: wire.FCreate},
		Payload: wire.AppendOpenRequest(nil, &wire.OpenRequest{Name: "two"}),
	})
	reply := r.recv(time.Second)
	if reply == nil || reply.Type != wire.TError {
		t.Fatalf("expected error reply, got %+v", reply)
	}
	if r.agent.tel.openRejects.Load() != 1 {
		t.Errorf("open rejects = %d, want 1", r.agent.tel.openRejects.Load())
	}
	var traced bool
	for _, e := range r.agent.Trace().Snapshot() {
		if e.Kind == "open_reject" {
			traced = true
		}
	}
	if !traced {
		t.Error("no open_reject trace event")
	}
}
