// Package agent implements the Swift storage agent: the server process
// that owns one host's local disk and serves object fragments over the
// light-weight data-transfer protocol.
//
// Following the paper's §3.1, each agent "waits for open requests on a
// well-known port. When an open request is received, a new (secondary)
// thread of control is established along with a private port for further
// communication about that file with the client. This thread remains
// active and the communications channel remains open until the file is
// closed by the client; the primary thread always continues to await new
// open requests."
//
// Reads are served statelessly: the agent streams the requested range as
// data packets as soon as the request arrives; the client re-requests
// anything it misses. Writes are stateful: the agent learns the expected
// range from the write announcement, checks arriving data packets against
// it, and "either acknowledges receipt of all packets or sends requests
// for packets lost".
package agent

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"swift/internal/extent"
	"swift/internal/integrity"
	"swift/internal/obs"
	"swift/internal/store"
	"swift/internal/transport"
	"swift/internal/wire"
)

// DefaultPort is the well-known control port.
const DefaultPort = "7070"

// Config tunes an agent. The zero value gets sensible defaults.
type Config struct {
	// Port is the well-known control port (default DefaultPort).
	Port string
	// ReadChunk is the number of bytes fetched from the store per
	// operation while streaming a read (default 8192). It controls how
	// disk and network time interleave.
	ReadChunk int
	// ResendCheck is how often incomplete write bursts are examined
	// (default 25ms).
	ResendCheck time.Duration
	// ResendAfter is how long a write burst may make no progress before
	// the agent requests the missing packets (default 50ms).
	ResendAfter time.Duration
	// SessionIdle tears down a session with no traffic (default 60s).
	SessionIdle time.Duration
	// DoneTTL keeps completed write-burst state around so duplicate
	// announcements can be re-acknowledged (default 2s).
	DoneTTL time.Duration
	// SyncWrites applies every write burst synchronously even without
	// the per-burst flag.
	SyncWrites bool
	// MaxSessions bounds concurrently open files (default 256); opens
	// beyond it are rejected, like a process running out of
	// descriptors.
	MaxSessions int
	// MaxBurstBytes bounds one announced write burst (default 8 MiB).
	// Bursts are buffered in memory until complete and applied to the
	// store in one piece, so a partially received burst never leaves
	// a torn range on disk; announcements beyond the bound are
	// rejected.
	MaxBurstBytes int64
	// Logf receives diagnostic messages (default: none).
	Logf func(format string, args ...any)
	// Verbose additionally routes burst-level trace events (session
	// lifecycle, resend prompts, stalled bursts) to Logf, prefixed
	// "trace:".
	Verbose bool
	// Obs, when non-nil, is the metric registry the agent registers its
	// telemetry in (swiftd's /metrics endpoint). Nil gets a private
	// registry; telemetry is always recorded.
	Obs *obs.Registry
	// Tracer, when non-nil, records agent-side service spans under the
	// trace contexts client request packets carry. Nil disables tracing.
	Tracer *obs.Tracer
	// ReadDelay injects an artificial pause before each read request is
	// served — a fault-injection knob for trace drills (the delay shows
	// up, annotated, in the agent's service span). Zero disables it.
	// SetReadDelay changes it at runtime.
	ReadDelay time.Duration
	// MaxInflightReads bounds read requests in service at once across all
	// sessions (default 64). Requests beyond the bound are shed with an
	// explicit pushback reply instead of queueing without limit: under
	// overload the agent answers fast with "not now" rather than slowly
	// with data nobody is still waiting for.
	MaxInflightReads int
	// PushbackRetryAfter is the pacing hint carried on queue-full
	// pushback replies (default 5ms).
	PushbackRetryAfter time.Duration
}

func (c *Config) fill() {
	if c.Port == "" {
		c.Port = DefaultPort
	}
	if c.ReadChunk == 0 {
		c.ReadChunk = 8192
	}
	if c.ResendCheck == 0 {
		c.ResendCheck = 25 * time.Millisecond
	}
	if c.ResendAfter == 0 {
		c.ResendAfter = 50 * time.Millisecond
	}
	if c.SessionIdle == 0 {
		c.SessionIdle = 60 * time.Second
	}
	if c.DoneTTL == 0 {
		c.DoneTTL = 2 * time.Second
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 256
	}
	if c.MaxBurstBytes == 0 {
		c.MaxBurstBytes = 8 << 20
	}
	if c.MaxInflightReads == 0 {
		c.MaxInflightReads = 64
	}
	if c.PushbackRetryAfter == 0 {
		c.PushbackRetryAfter = 5 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Agent is one storage agent.
type Agent struct {
	host transport.Host
	st   store.Store
	cfg  Config
	ctl  transport.PacketConn

	mu       sync.Mutex
	sessions map[uint64]*session // guarded by mu
	nextH    uint64              // guarded by mu
	closed   bool                // guarded by mu

	// readDelay is the injected read-service delay in nanoseconds,
	// atomic so fault drills can slow a live agent mid-run.
	readDelay atomic.Int64
	// inflightReads counts read requests currently in service; the
	// admission gate sheds past cfg.MaxInflightReads.
	inflightReads atomic.Int32

	tel *telemetry

	wg sync.WaitGroup
}

// New creates an agent serving st on host's well-known port and starts its
// control loop.
func New(host transport.Host, st store.Store, cfg Config) (*Agent, error) {
	cfg.fill()
	ctl, err := host.Listen(cfg.Port)
	if err != nil {
		return nil, fmt.Errorf("agent: %w", err)
	}
	a := &Agent{
		host:     host,
		st:       st,
		cfg:      cfg,
		ctl:      ctl,
		sessions: make(map[uint64]*session),
		tel:      newAgentTelemetry(cfg.Obs),
	}
	a.readDelay.Store(int64(cfg.ReadDelay))
	if cfg.Verbose {
		logf := a.cfg.Logf
		a.tel.trace.SetSink(func(e obs.Event) { logf("trace: %s", e.String()) })
	}
	a.wg.Add(1)
	go a.controlLoop()
	return a, nil
}

// Addr returns the agent's well-known control address.
func (a *Agent) Addr() string { return a.ctl.LocalAddr() }

// Close stops the agent and tears down all sessions.
func (a *Agent) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	sess := make([]*session, 0, len(a.sessions))
	for _, s := range a.sessions {
		sess = append(sess, s)
	}
	a.mu.Unlock()
	a.ctl.Close()
	for _, s := range sess {
		s.conn.Close()
	}
	a.wg.Wait()
	return nil
}

func (a *Agent) isClosed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.closed
}

// send marshals and transmits one packet, logging failures. Control
// replies and error paths come through here; the per-session data path
// uses session.send, which reuses the session's marshal scratch.
func (a *Agent) send(c transport.PacketConn, to string, p *wire.Packet) {
	buf, err := wire.Marshal(p)
	if err != nil {
		a.cfg.Logf("agent %s: marshal %v: %v", a.host.Name(), p.Type, err) //lint:allow hotalloc cold marshal-failure log
		return
	}
	if err := c.WriteTo(buf, to); err != nil {
		a.cfg.Logf("agent %s: send %v to %s: %v", a.host.Name(), p.Type, to, err) //lint:allow hotalloc cold send-failure log
	}
}

// joinSpan opens an agent-side child span under the client-minted trace
// context a request packet carries. A nil tracer or an untraced packet
// yields a nil span; every *obs.Span method is nil-safe, so handlers
// instrument unconditionally.
func (a *Agent) joinSpan(ctx obs.SpanContext, name string) *obs.Span {
	return a.cfg.Tracer.StartRemote(ctx, "agent", name, -1)
}

// sendError reports a failed request to the client. Corruption errors
// are additionally counted: they mean the store detected damaged bytes
// at rest and refused to serve them.
func (a *Agent) sendError(c transport.PacketConn, to string, req *wire.Packet, err error) {
	if integrity.IsCorrupt(err) {
		a.tel.corruptErrs.Inc()
		a.traceEvent("corrupt", "req %d: %v", req.ReqID, err) //lint:allow hotalloc error replies are the cold path
	}
	a.send(c, to, &wire.Packet{ //lint:allow hotalloc error replies are the cold path
		Header:  wire.Header{Type: wire.TError, ReqID: req.ReqID, Handle: req.Handle},
		Payload: wire.AppendError(nil, err.Error()),
	})
}

// ReadDelay reports the injected read-service delay.
func (a *Agent) ReadDelay() time.Duration { return time.Duration(a.readDelay.Load()) }

// SetReadDelay changes the injected read-service delay at runtime — the
// fault-injection hook behind the overload drills' "slowed agent".
func (a *Agent) SetReadDelay(d time.Duration) { a.readDelay.Store(int64(d)) }

// acquireRead claims one slot in the bounded read-service gate; a false
// return means the agent is over its admission quota and the request
// must be shed.
func (a *Agent) acquireRead() bool {
	if a.inflightReads.Add(1) > int32(a.cfg.MaxInflightReads) {
		a.inflightReads.Add(-1)
		return false
	}
	return true
}

func (a *Agent) releaseRead() { a.inflightReads.Add(-1) }

// shed refuses a request with an explicit pushback reply. Pushback is
// backpressure, not failure: the client must pace or retry elsewhere,
// and must not count the refusal against the agent's health lifecycle.
func (a *Agent) shed(c transport.PacketConn, to string, req *wire.Packet, sp *obs.Span, reason wire.PushbackReason) {
	info := wire.PushbackInfo{Reason: reason}
	switch reason {
	case wire.PushDeadlineExpired:
		a.tel.shedDeadline.Inc()
	default:
		info.RetryAfter = a.cfg.PushbackRetryAfter
		a.tel.shedQueue.Inc()
	}
	a.tel.pushbacks.Inc()
	sp.Annotate("shed: %s", reason) //lint:allow hotalloc pushback is the overload path, already shedding work
	sp.MarkFault()
	a.traceEvent("shed", "req %d: %s", req.ReqID, reason) //lint:allow hotalloc pushback is the overload path, already shedding work
	a.send(c, to, &wire.Packet{                           //lint:allow hotalloc pushback is the overload path, already shedding work
		Header:  wire.Header{Type: wire.TPushback, ReqID: req.ReqID, Handle: req.Handle},
		Payload: wire.AppendPushback(nil, &info),
	})
}

// controlLoop serves the well-known port: open, stat, remove.
func (a *Agent) controlLoop() {
	defer a.wg.Done()
	buf := make([]byte, wire.MaxPacket)
	var pkt wire.Packet
	for {
		a.ctl.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, from, err := a.ctl.ReadFrom(buf)
		if err != nil {
			if transport.IsTimeout(err) {
				if a.isClosed() {
					return
				}
				continue
			}
			return // closed
		}
		if err := wire.Unmarshal(buf[:n], &pkt); err != nil {
			a.tel.badPackets.Inc()
			a.cfg.Logf("agent %s: bad packet from %s: %v", a.host.Name(), from, err)
			continue
		}
		switch pkt.Type {
		case wire.TOpen:
			a.handleOpen(&pkt, from)
		case wire.TStat:
			a.handleStat(&pkt, from)
		case wire.TRemove:
			a.handleRemove(&pkt, from)
		case wire.TList:
			a.handleList(&pkt, from)
		case wire.TPing:
			a.handlePing(&pkt, from)
		default:
			a.cfg.Logf("agent %s: unexpected %v on control port", a.host.Name(), pkt.Type)
		}
	}
}

func (a *Agent) handleOpen(pkt *wire.Packet, from string) {
	sp := a.joinSpan(pkt.Trace, "agent_open")
	defer sp.Finish()
	fail := func(err error) {
		sp.SetError(err)
		a.sendError(a.ctl, from, pkt, err)
	}
	req, err := wire.ParseOpenRequest(pkt.Payload)
	if err != nil {
		a.tel.openRejects.Inc()
		fail(err)
		return
	}
	obj, err := a.st.Open(req.Name, pkt.Flags&wire.FCreate != 0)
	if err != nil {
		a.tel.openRejects.Inc()
		fail(err)
		return
	}
	if pkt.Flags&wire.FTrunc != 0 {
		if err := obj.Truncate(0); err != nil {
			obj.Close()
			fail(err)
			return
		}
	}
	size, err := obj.Size()
	if err != nil {
		obj.Close()
		fail(err)
		return
	}
	a.mu.Lock()
	if len(a.sessions) >= a.cfg.MaxSessions {
		a.mu.Unlock()
		obj.Close()
		a.tel.openRejects.Inc()
		a.traceEvent("open_reject", "%s: too many open files (%d)", req.Name, a.cfg.MaxSessions)
		fail(fmt.Errorf("too many open files (%d)", a.cfg.MaxSessions))
		return
	}
	a.mu.Unlock()
	conn, err := a.host.Listen("0")
	if err != nil {
		obj.Close()
		fail(err)
		return
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		conn.Close()
		obj.Close()
		return
	}
	a.nextH++
	h := a.nextH
	s := &session{
		agent:  a,
		handle: h,
		obj:    obj,
		conn:   conn,
		writes: make(map[uint32]*writeState),
	}
	a.sessions[h] = s
	live := len(a.sessions)
	a.mu.Unlock()
	a.tel.opens.Inc()
	a.tel.sessions.Set(int64(live))
	a.traceEvent("open", "%s: session %d opened (%d live)", req.Name, h, live)
	sp.Annotate("%s: session %d (%d live)", req.Name, h, live)
	a.wg.Add(1)
	go s.run()

	_, port, _ := transport.SplitAddr(conn.LocalAddr())
	a.send(a.ctl, from, &wire.Packet{
		Header:  wire.Header{Type: wire.TOpenReply, ReqID: pkt.ReqID, Handle: h},
		Payload: wire.AppendOpenReply(nil, &wire.OpenReply{Port: port, Size: size}),
	})
}

func (a *Agent) handleStat(pkt *wire.Packet, from string) {
	size, err := a.st.Stat(wireName(pkt.Payload))
	reply := wire.StatReply{Size: size, Exists: err == nil}
	if err != nil && err != store.ErrNotExist {
		a.sendError(a.ctl, from, pkt, err)
		return
	}
	a.send(a.ctl, from, &wire.Packet{
		Header:  wire.Header{Type: wire.TStatReply, ReqID: pkt.ReqID},
		Payload: wire.AppendStatReply(nil, &reply),
	})
}

func (a *Agent) handleRemove(pkt *wire.Packet, from string) {
	err := a.st.Remove(wireName(pkt.Payload))
	if err != nil && err != store.ErrNotExist {
		a.sendError(a.ctl, from, pkt, err)
		return
	}
	a.send(a.ctl, from, &wire.Packet{
		Header: wire.Header{Type: wire.TRemoveReply, ReqID: pkt.ReqID},
	})
}

// handlePing replies with the agent's status: object count, open
// sessions, and total fragment bytes.
func (a *Agent) handlePing(pkt *wire.Packet, from string) {
	names, err := a.st.List()
	if err != nil {
		a.sendError(a.ctl, from, pkt, err)
		return
	}
	var bytes int64
	for _, n := range names {
		if sz, err := a.st.Stat(n); err == nil {
			bytes += sz
		}
	}
	a.mu.Lock()
	sessions := len(a.sessions)
	a.mu.Unlock()
	a.send(a.ctl, from, &wire.Packet{
		Header: wire.Header{Type: wire.TPingReply, ReqID: pkt.ReqID},
		Payload: wire.AppendPingReply(nil, &wire.PingReply{
			Objects:  uint32(len(names)),
			Sessions: uint32(sessions),
			Bytes:    bytes,
		}),
	})
}

// handleList streams the store's object names, FLast marking the end.
func (a *Agent) handleList(pkt *wire.Packet, from string) {
	names, err := a.st.List()
	if err != nil {
		a.sendError(a.ctl, from, pkt, err)
		return
	}
	seq := uint32(0)
	for {
		payload, consumed := wire.AppendNames(nil, names)
		names = names[consumed:]
		flags := uint16(0)
		if len(names) == 0 {
			flags = wire.FLast
		}
		a.send(a.ctl, from, &wire.Packet{
			Header: wire.Header{
				Type: wire.TListReply, ReqID: pkt.ReqID,
				Offset: int64(seq), Flags: flags,
			},
			Payload: payload,
		})
		seq++
		if len(names) == 0 || consumed == 0 {
			return
		}
	}
}

// wireName decodes the name payload shared by stat and remove.
func wireName(b []byte) string {
	r, err := wire.ParseOpenRequest(b)
	if err != nil {
		return ""
	}
	return r.Name
}

// SessionCount reports the number of open file sessions.
func (a *Agent) SessionCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.sessions)
}

// dropSession removes s from the session table.
func (a *Agent) dropSession(s *session) {
	a.mu.Lock()
	delete(a.sessions, s.handle)
	live := len(a.sessions)
	a.mu.Unlock()
	a.tel.sessions.Set(int64(live))
}

// writeState tracks one announced write burst. Arriving data packets
// are buffered in data (sized at announce time) and applied to the
// store in one WriteAt once every expected byte is present, so the
// store never sees a torn burst — which also lets a checksumming store
// treat unit-aligned bursts as whole-block overwrites.
type writeState struct {
	announced bool
	off       int64
	length    int64
	flags     uint16
	data      []byte
	// early holds data packets that overtook the announcement
	// (datagrams reorder); they are replayed into data once the
	// announcement sizes the buffer.
	early      []earlyData
	earlyBytes int64
	received   extent.Set
	first      time.Time // when the burst was first seen (announce or data)
	progress   time.Time // last time new data arrived
	prompted   time.Time // last time a resend was requested
	done       bool
	doneAt     time.Time
	from       string
	// sp is the agent-side service span joined from the announcement's
	// trace context (data packets travel untraced). It spans announce →
	// ack, nil when the burst is untraced, and is nilled after Finish so
	// duplicate announcements cannot double-close it.
	sp *obs.Span
}

// finishSpan closes the burst's service span exactly once.
func (w *writeState) finishSpan(err error) {
	w.sp.SetError(err)
	w.sp.Finish()
	w.sp = nil
}

// earlyData is one buffered pre-announcement data packet.
type earlyData struct {
	off int64
	b   []byte
}

// session is the secondary thread of control serving one open file.
type session struct {
	agent  *Agent
	handle uint64
	obj    store.Object
	conn   transport.PacketConn

	writes   map[uint32]*writeState
	lastSeen time.Time

	// sendBuf is the marshal scratch for the session's data path. The
	// session is served by a single goroutine, so the buffer is reused
	// across packets without locking (transports copy on WriteTo).
	sendBuf []byte
	// readFree recycles the two serve-loop chunk buffers: the reader
	// goroutine fills one while the transmitter drains the other, so a
	// burst of any length touches exactly two buffers.
	readFree chan []byte
}

// send marshals into the session's scratch buffer and transmits on the
// session conn — the zero-allocation mirror of core's File.sendPacket.
func (s *session) send(to string, p *wire.Packet) {
	buf, err := wire.AppendPacket(s.sendBuf[:0], p)
	if err != nil {
		s.agent.cfg.Logf("agent %s: marshal %v: %v", s.agent.host.Name(), p.Type, err) //lint:allow hotalloc cold marshal-failure log
		return
	}
	s.sendBuf = buf[:0]
	if err := s.conn.WriteTo(buf, to); err != nil {
		s.agent.cfg.Logf("agent %s: send %v to %s: %v", s.agent.host.Name(), p.Type, to, err) //lint:allow hotalloc cold send-failure log
	}
}

func (s *session) run() {
	defer s.agent.wg.Done()
	defer s.obj.Close()
	defer s.conn.Close()
	defer s.abandonWrites()

	cfg := &s.agent.cfg
	buf := make([]byte, wire.MaxPacket)
	var pkt wire.Packet
	s.lastSeen = time.Now()
	for {
		s.conn.SetReadDeadline(time.Now().Add(cfg.ResendCheck))
		n, from, err := s.conn.ReadFrom(buf)
		now := time.Now()
		switch {
		case err == nil:
			s.lastSeen = now
			if uerr := wire.Unmarshal(buf[:n], &pkt); uerr != nil {
				s.agent.tel.badPackets.Inc()
				cfg.Logf("agent %s session %d: bad packet: %v", s.agent.host.Name(), s.handle, uerr)
				continue
			}
			if s.dispatch(&pkt, from) {
				s.agent.dropSession(s)
				return
			}
		case transport.IsTimeout(err):
			if now.Sub(s.lastSeen) > cfg.SessionIdle || s.agent.isClosed() {
				if !s.agent.isClosed() {
					s.agent.tel.idleReaps.Inc()
					s.agent.traceEvent("idle_reap", "session %d idle for %v, reaped", s.handle, now.Sub(s.lastSeen))
				}
				s.agent.dropSession(s)
				return
			}
		default:
			s.agent.dropSession(s)
			return
		}
		s.checkWrites(time.Now())
	}
}

// dispatch handles one packet; it returns true when the session should end.
func (s *session) dispatch(pkt *wire.Packet, from string) (closed bool) {
	switch pkt.Type {
	case wire.TRead:
		s.serveRead(pkt, from)
	case wire.TWrite:
		s.handleWriteAnnounce(pkt, from)
	case wire.TData:
		s.handleData(pkt, from)
	case wire.TSync:
		sp := s.agent.joinSpan(pkt.Trace, "agent_sync")
		err := s.agent.syncTimed(s.obj.Sync)
		sp.SetError(err)
		sp.Finish()
		if err != nil {
			s.agent.sendError(s.conn, from, pkt, err)
			return false
		}
		s.agent.send(s.conn, from, &wire.Packet{
			Header: wire.Header{Type: wire.TSyncReply, ReqID: pkt.ReqID, Handle: s.handle},
		})
	case wire.TTrunc:
		sp := s.agent.joinSpan(pkt.Trace, "agent_trunc")
		err := s.obj.Truncate(pkt.Offset)
		sp.SetError(err)
		sp.Finish()
		if err != nil {
			s.agent.sendError(s.conn, from, pkt, err)
			return false
		}
		s.agent.send(s.conn, from, &wire.Packet{
			Header: wire.Header{Type: wire.TTruncReply, ReqID: pkt.ReqID, Handle: s.handle},
		})
	case wire.TClose:
		s.agent.send(s.conn, from, &wire.Packet{
			Header: wire.Header{Type: wire.TCloseReply, ReqID: pkt.ReqID, Handle: s.handle},
		})
		return true
	default:
		s.agent.cfg.Logf("agent %s session %d: unexpected %v", s.agent.host.Name(), s.handle, pkt.Type)
	}
	return false
}

// serveRead streams [Offset, Offset+Length) to the client as data packets.
// The store is consulted in ReadChunk pieces by a reader goroutine while
// the session transmits, so disk service overlaps network transmission the
// way the prototype's kernel read-ahead overlapped its sends. Bytes beyond
// end-of-fragment are zero-filled, which is both the sparse-file
// convention and what parity reconstruction expects.
//
//swift:hotpath
func (s *session) serveRead(pkt *wire.Packet, from string) {
	cfg := &s.agent.cfg
	tel := s.agent.tel
	tel.readReqs.Inc()
	sp := s.agent.joinSpan(pkt.Trace, "agent_read_serve")
	defer sp.Finish()
	sp.Annotate("[%d:%d)", pkt.Offset, pkt.Offset+int64(pkt.Length)) //lint:allow hotalloc one span note per burst, not per packet
	if !s.agent.acquireRead() {
		s.agent.shed(s.conn, from, pkt, sp, wire.PushQueueFull)
		return
	}
	defer s.agent.releaseRead()
	// The deadline extension carries the remaining budget at client
	// send; the agent anchors it against its own clock at dequeue (no
	// clock sync), then checks it wherever service time accrues.
	var expiry time.Time
	if pkt.Deadline > 0 {
		expiry = time.Now().Add(pkt.Deadline)
	}
	if delay := s.agent.ReadDelay(); delay > 0 {
		time.Sleep(delay)
		sp.Annotate("injected read delay %v", delay) //lint:allow hotalloc fault-injection drill path, never taken in production profiles
		// A uniformly-injected delay never trips the live-p99 keep
		// criterion (every op is equally slow); mark the drill explicitly
		// so `swiftctl trace -slow` surfaces it.
		sp.MarkFault()
	}
	if !expiry.IsZero() && time.Now().After(expiry) {
		s.agent.shed(s.conn, from, pkt, sp, wire.PushDeadlineExpired)
		return
	}
	start := time.Now()
	defer func() { tel.readServeLat.Observe(time.Since(start)) }() //lint:allow hotalloc one latency-observe closure per burst
	type chunk struct {
		off  int64
		data []byte
		err  error
	}
	if s.readFree == nil {
		// One-time per-session pool: two chunk buffers recycled across
		// every burst this session serves.
		//lint:allow hotalloc per-session buffer pool, built on the first read burst only
		s.readFree = make(chan []byte, 2)
		s.readFree <- make([]byte, cfg.ReadChunk) //lint:allow hotalloc per-session buffer pool, built on the first read burst only
		s.readFree <- make([]byte, cfg.ReadChunk) //lint:allow hotalloc per-session buffer pool, built on the first read burst only
	}
	//lint:allow hotalloc one bounded channel per read burst, amortized over ReadChunk-sized transfers
	chunks := make(chan chunk, 2)
	go func() { //lint:allow hotalloc one reader goroutine and closure per burst, amortized over ReadChunk-sized transfers
		defer close(chunks)
		remaining := int64(pkt.Length)
		off := pkt.Offset
		for remaining > 0 {
			n := int64(cfg.ReadChunk)
			if n > remaining {
				n = remaining
			}
			buf := (<-s.readFree)[:n]
			got, err := s.obj.ReadAt(buf, off)
			if int64(got) < n && err != nil && !isEOF(err) {
				s.readFree <- buf[:cap(buf)]
				chunks <- chunk{err: err}
				return
			}
			// The tail past EOF must read as zeros: the buffer is
			// recycled, so clear whatever the store did not fill.
			for i := int64(got); i < n; i++ {
				buf[i] = 0
			}
			chunks <- chunk{off: off, data: buf}
			off += n
			remaining -= n
		}
	}()

	end := pkt.Offset + int64(pkt.Length)
	// One packet struct serves the whole burst; only the per-datagram
	// header fields and the payload window change between sends.
	dp := wire.Packet{Header: wire.Header{Type: wire.TData, ReqID: pkt.ReqID, Handle: s.handle}}
	expired := false
	var fail error
	for c := range chunks {
		if c.err != nil {
			fail = c.err
			continue // drain the reader
		}
		if !expired && !expiry.IsZero() && time.Now().After(expiry) {
			// The budget ran out mid-stream: stop transmitting — the
			// client has moved on, and the remaining packets would only
			// displace work that can still meet its deadline.
			expired = true
		}
		if !expired {
			for sent := int64(0); sent < int64(len(c.data)); {
				p := int64(len(c.data)) - sent
				if p > wire.MaxPayload {
					p = wire.MaxPayload
				}
				dp.Offset = c.off + sent
				dp.Length = uint32(p)
				dp.Flags = 0
				if c.off+sent+p == end {
					dp.Flags = wire.FLast
				}
				dp.Payload = c.data[sent : sent+p]
				s.send(from, &dp)
				tel.readBytes.Add(p)
				sent += p
			}
		}
		s.readFree <- c.data[:cap(c.data)]
	}
	switch {
	case fail != nil:
		sp.SetError(fail)
		s.agent.sendError(s.conn, from, pkt, fail)
	case expired:
		s.agent.shed(s.conn, from, pkt, sp, wire.PushDeadlineExpired)
	}
}

func isEOF(err error) bool { return errors.Is(err, io.EOF) }

// handleWriteAnnounce records the expected range of a write burst.
func (s *session) handleWriteAnnounce(pkt *wire.Packet, from string) {
	w := s.writes[pkt.ReqID]
	if w == nil {
		now := time.Now()
		w = &writeState{first: now, progress: now}
		s.writes[pkt.ReqID] = w
	}
	if w.done {
		// Duplicate announcement after completion: re-acknowledge.
		s.ackWrite(pkt.ReqID, w, from)
		return
	}
	if w.sp == nil {
		w.sp = s.agent.joinSpan(pkt.Trace, "agent_write_serve")
		w.sp.Annotate("[%d:%d)", pkt.Offset, pkt.Offset+int64(pkt.Length))
	}
	if int64(pkt.Length) > s.agent.cfg.MaxBurstBytes {
		err := fmt.Errorf("write burst of %d bytes exceeds limit %d", pkt.Length, s.agent.cfg.MaxBurstBytes)
		w.finishSpan(err)
		delete(s.writes, pkt.ReqID)
		s.agent.sendError(s.conn, from, pkt, err)
		return
	}
	w.announced = true
	w.off = pkt.Offset
	w.length = int64(pkt.Length)
	w.flags = pkt.Flags
	w.from = from
	if int64(len(w.data)) != w.length {
		w.data = make([]byte, w.length)
		w.received.Reset()
	}
	// Replay data packets that overtook this announcement.
	for _, e := range w.early {
		s.bufferData(w, e.off, e.b)
	}
	w.early, w.earlyBytes = nil, 0
	s.completeIfReady(pkt.ReqID, w, from)
}

// bufferData copies one data payload into its burst buffer, rejecting
// ranges outside the announced burst.
//
//swift:hotpath
func (s *session) bufferData(w *writeState, off int64, payload []byte) bool {
	rel := off - w.off
	if rel < 0 || rel+int64(len(payload)) > w.length {
		s.agent.tel.badPackets.Inc()
		s.agent.cfg.Logf("agent %s session %d: data [%d,+%d) outside burst [%d,+%d)",
			s.agent.host.Name(), s.handle, off, len(payload), w.off, w.length) //lint:allow hotalloc out-of-burst rejects are the cold path
		return false
	}
	copy(w.data[rel:], payload)
	s.agent.tel.dataPackets.Inc()
	s.agent.tel.writeBytes.Add(int64(len(payload)))
	w.received.Add(off, int64(len(payload)))
	w.progress = time.Now()
	return true
}

// handleData buffers one write data packet into its announced burst.
// Packets that overtake the announcement are kept aside (the buffer
// cannot be sized without it) and replayed when it arrives; should the
// early stash overflow, the resend machinery recovers the payload.
//
//swift:hotpath
func (s *session) handleData(pkt *wire.Packet, from string) {
	if len(pkt.Payload) == 0 {
		return
	}
	w := s.writes[pkt.ReqID]
	if w == nil {
		now := time.Now()
		w = &writeState{first: now, progress: now} //lint:allow hotalloc one state record per write burst
		s.writes[pkt.ReqID] = w
	}
	if w.done {
		return
	}
	if !w.announced {
		if w.earlyBytes+int64(len(pkt.Payload)) > s.agent.cfg.MaxBurstBytes {
			s.agent.tel.earlyData.Inc()
			return
		}
		b := make([]byte, len(pkt.Payload)) //lint:allow hotalloc overtaking-data stash, bounded by MaxBurstBytes
		copy(b, pkt.Payload)
		w.early = append(w.early, earlyData{off: pkt.Offset, b: b}) //lint:allow hotalloc overtaking-data stash, bounded by MaxBurstBytes
		w.earlyBytes += int64(len(b))
		w.progress = time.Now()
		return
	}
	if !s.bufferData(w, pkt.Offset, pkt.Payload) {
		return
	}
	w.from = from
	s.completeIfReady(pkt.ReqID, w, from)
}

// completeIfReady applies and acknowledges the burst once every
// expected byte arrived. Apply failures (a full store, or a corrupt
// neighbouring block the merge would have to trust) are reported to
// the client and the burst state discarded so a retry starts clean.
func (s *session) completeIfReady(reqID uint32, w *writeState, from string) {
	if !w.announced || w.done || !w.received.Contains(w.off, w.length) {
		return
	}
	if w.length > 0 {
		if _, err := s.obj.WriteAt(w.data, w.off); err != nil {
			w.finishSpan(err)
			delete(s.writes, reqID)
			s.agent.sendError(s.conn, from, &wire.Packet{ //lint:allow hotalloc apply-failure reply is the cold path
				Header: wire.Header{Type: wire.TWrite, ReqID: reqID, Handle: s.handle},
			}, err)
			return
		}
	}
	w.data = nil
	if s.agent.cfg.SyncWrites || w.flags&wire.FSyncWrite != 0 {
		if err := s.agent.syncTimed(s.obj.Sync); err != nil {
			s.agent.cfg.Logf("agent %s: sync: %v", s.agent.host.Name(), err) //lint:allow hotalloc cold sync-failure log
		}
	}
	w.done = true
	w.doneAt = time.Now()
	w.finishSpan(nil)
	s.agent.tel.writeBursts.Inc()
	if !w.first.IsZero() {
		s.agent.tel.writeLat.Observe(w.doneAt.Sub(w.first))
	}
	s.ackWrite(reqID, w, from)
}

func (s *session) ackWrite(reqID uint32, w *writeState, from string) {
	s.send(from, &wire.Packet{ //lint:allow hotalloc one ack packet per write burst
		Header: wire.Header{
			Type: wire.TWriteAck, ReqID: reqID, Handle: s.handle,
			Offset: w.off, Length: uint32(w.length),
		},
	})
}

// abandonWrites closes the service spans of bursts still incomplete
// when the session ends, so the tracer's trace can flush instead of
// waiting for the stale-trace eviction timer.
func (s *session) abandonWrites() {
	for _, w := range s.writes {
		if w.sp != nil {
			w.finishSpan(errors.New("session closed with burst incomplete"))
		}
	}
}

// checkWrites requests resends for stalled bursts and garbage-collects
// completed ones.
func (s *session) checkWrites(now time.Time) {
	cfg := &s.agent.cfg
	for reqID, w := range s.writes {
		if w.done {
			if now.Sub(w.doneAt) > cfg.DoneTTL {
				delete(s.writes, reqID)
			}
			continue
		}
		if !w.announced || w.from == "" {
			continue
		}
		idle := now.Sub(w.progress)
		sincePrompt := now.Sub(w.prompted)
		if idle < cfg.ResendAfter || sincePrompt < cfg.ResendAfter {
			continue
		}
		missing := w.received.Missing(w.off, w.length)
		if len(missing) == 0 {
			s.completeIfReady(reqID, w, w.from)
			continue
		}
		ranges := make([]wire.Range, 0, len(missing))
		for _, m := range missing {
			ranges = append(ranges, wire.Range{Off: m.Off, Len: m.Len})
		}
		w.prompted = now
		s.agent.tel.resendReqs.Inc()
		w.sp.MarkRetry()
		w.sp.Annotate("resend prompt: %d missing ranges after %v stall", len(ranges), idle)
		s.agent.traceEvent("resend_prompt", "session %d req %d: %d missing ranges after %v stall",
			s.handle, reqID, len(ranges), idle)
		s.agent.send(s.conn, w.from, &wire.Packet{
			Header: wire.Header{
				Type: wire.TResend, ReqID: reqID, Handle: s.handle,
				Offset: w.off, Length: uint32(w.length),
			},
			Payload: wire.AppendResend(nil, ranges),
		})
	}
}
