package agent

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"swift/internal/store"
	"swift/internal/transport"
	"swift/internal/transport/memnet"
	"swift/internal/wire"
)

// testRig is a raw-protocol harness: an agent plus a bare client conn, so
// tests can exercise the wire protocol directly, including its failure
// handling.
type testRig struct {
	t     *testing.T
	agent *Agent
	st    *store.Mem
	conn  transport.PacketConn
	buf   []byte
	req   uint32
}

func newRig(t *testing.T, cfg Config) *testRig {
	t.Helper()
	n := memnet.New(1)
	seg := n.NewSegment("s", memnet.SegmentConfig{BandwidthBps: 1e10, FrameOverhead: 46})
	ah := n.MustHost("agent", memnet.HostConfig{}, seg)
	ch := n.MustHost("client", memnet.HostConfig{}, seg)
	st := store.NewMem()
	if cfg.ResendCheck == 0 {
		cfg.ResendCheck = 5 * time.Millisecond
	}
	if cfg.ResendAfter == 0 {
		cfg.ResendAfter = 10 * time.Millisecond
	}
	a, err := New(ah, st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := ch.Listen("0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		conn.Close()
		a.Close()
		n.Close()
	})
	return &testRig{t: t, agent: a, st: st, conn: conn, buf: make([]byte, wire.MaxPacket)}
}

func (r *testRig) send(to string, p *wire.Packet) {
	r.t.Helper()
	buf, err := wire.Marshal(p)
	if err != nil {
		r.t.Fatal(err)
	}
	if err := r.conn.WriteTo(buf, to); err != nil {
		r.t.Fatal(err)
	}
}

func (r *testRig) recv(timeout time.Duration) *wire.Packet {
	r.t.Helper()
	r.conn.SetReadDeadline(time.Now().Add(timeout))
	n, _, err := r.conn.ReadFrom(r.buf)
	if err != nil {
		return nil
	}
	var p wire.Packet
	if err := wire.Unmarshal(r.buf[:n], &p); err != nil {
		r.t.Fatalf("bad packet: %v", err)
	}
	p.Payload = append([]byte(nil), p.Payload...)
	return &p
}

func (r *testRig) nextReq() uint32 { r.req++; return r.req }

// open performs the open handshake and returns the session address and
// handle.
func (r *testRig) open(name string, flags uint16) (string, uint64) {
	r.t.Helper()
	id := r.nextReq()
	r.send(r.agent.Addr(), &wire.Packet{
		Header:  wire.Header{Type: wire.TOpen, ReqID: id, Flags: flags},
		Payload: wire.AppendOpenRequest(nil, &wire.OpenRequest{Name: name}),
	})
	reply := r.recv(time.Second)
	if reply == nil {
		r.t.Fatal("no open reply")
	}
	if reply.Type == wire.TError {
		r.t.Fatalf("open failed: %v", wire.ParseError(reply.Payload))
	}
	or, err := wire.ParseOpenReply(reply.Payload)
	if err != nil {
		r.t.Fatal(err)
	}
	ahost, _, _ := transport.SplitAddr(r.agent.Addr())
	return transport.JoinAddr(ahost, or.Port), reply.Handle
}

func TestOpenCreatesPrivatePort(t *testing.T) {
	r := newRig(t, Config{})
	addr, handle := r.open("obj", wire.FCreate)
	if addr == r.agent.Addr() {
		t.Fatal("session port equals control port")
	}
	if handle == 0 {
		t.Fatal("zero handle")
	}
	// A second open gets a different port and handle.
	addr2, handle2 := r.open("obj", wire.FCreate)
	if addr2 == addr || handle2 == handle {
		t.Fatal("sessions not distinct")
	}
}

func TestOpenMissingWithoutCreate(t *testing.T) {
	r := newRig(t, Config{})
	id := r.nextReq()
	r.send(r.agent.Addr(), &wire.Packet{
		Header:  wire.Header{Type: wire.TOpen, ReqID: id},
		Payload: wire.AppendOpenRequest(nil, &wire.OpenRequest{Name: "absent"}),
	})
	reply := r.recv(time.Second)
	if reply == nil || reply.Type != wire.TError {
		t.Fatalf("want TError, got %+v", reply)
	}
}

func TestWriteAnnounceDataAck(t *testing.T) {
	r := newRig(t, Config{})
	addr, h := r.open("obj", wire.FCreate)

	data := []byte("hello swift agent")
	id := r.nextReq()
	r.send(addr, &wire.Packet{Header: wire.Header{
		Type: wire.TWrite, ReqID: id, Handle: h, Offset: 0, Length: uint32(len(data)),
	}})
	r.send(addr, &wire.Packet{
		Header:  wire.Header{Type: wire.TData, ReqID: id, Handle: h, Offset: 0, Length: uint32(len(data))},
		Payload: data,
	})
	ack := r.recv(time.Second)
	if ack == nil || ack.Type != wire.TWriteAck || ack.ReqID != id {
		t.Fatalf("want ack, got %+v", ack)
	}
	// The store saw the bytes.
	if sz, err := r.st.Stat("obj"); err != nil || sz != int64(len(data)) {
		t.Fatalf("store size = %d, %v", sz, err)
	}
}

func TestDataBeforeAnnounceStillAcks(t *testing.T) {
	r := newRig(t, Config{})
	addr, h := r.open("obj", wire.FCreate)
	data := []byte("out of order")
	id := r.nextReq()
	// Data first, announcement second (datagrams reorder).
	r.send(addr, &wire.Packet{
		Header:  wire.Header{Type: wire.TData, ReqID: id, Handle: h, Offset: 0, Length: uint32(len(data))},
		Payload: data,
	})
	r.send(addr, &wire.Packet{Header: wire.Header{
		Type: wire.TWrite, ReqID: id, Handle: h, Offset: 0, Length: uint32(len(data)),
	}})
	if ack := r.recv(time.Second); ack == nil || ack.Type != wire.TWriteAck {
		t.Fatalf("want ack, got %+v", ack)
	}
}

func TestIncompleteWriteTriggersResendRequest(t *testing.T) {
	r := newRig(t, Config{ResendCheck: 5 * time.Millisecond, ResendAfter: 10 * time.Millisecond})
	addr, h := r.open("obj", wire.FCreate)

	id := r.nextReq()
	// Announce 3000 bytes but deliver only the middle 1000.
	r.send(addr, &wire.Packet{Header: wire.Header{
		Type: wire.TWrite, ReqID: id, Handle: h, Offset: 0, Length: 3000,
	}})
	payload := make([]byte, 1000)
	r.send(addr, &wire.Packet{
		Header:  wire.Header{Type: wire.TData, ReqID: id, Handle: h, Offset: 1000, Length: 1000},
		Payload: payload,
	})

	resend := r.recv(time.Second)
	if resend == nil || resend.Type != wire.TResend || resend.ReqID != id {
		t.Fatalf("want resend request, got %+v", resend)
	}
	ranges, err := wire.ParseResend(resend.Payload)
	if err != nil {
		t.Fatal(err)
	}
	want := []wire.Range{{Off: 0, Len: 1000}, {Off: 2000, Len: 1000}}
	if len(ranges) != 2 || ranges[0] != want[0] || ranges[1] != want[1] {
		t.Fatalf("resend ranges = %v, want %v", ranges, want)
	}

	// Supply the missing pieces; the ack follows.
	for _, rg := range want {
		r.send(addr, &wire.Packet{
			Header:  wire.Header{Type: wire.TData, ReqID: id, Handle: h, Offset: rg.Off, Length: uint32(rg.Len)},
			Payload: payload,
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		p := r.recv(200 * time.Millisecond)
		if p != nil && p.Type == wire.TWriteAck {
			return
		}
	}
	t.Fatal("no ack after resending missing data")
}

func TestDuplicateAnnounceAfterCompletionReAcks(t *testing.T) {
	r := newRig(t, Config{})
	addr, h := r.open("obj", wire.FCreate)
	data := []byte("dup")
	id := r.nextReq()
	announce := &wire.Packet{Header: wire.Header{
		Type: wire.TWrite, ReqID: id, Handle: h, Offset: 0, Length: uint32(len(data)),
	}}
	r.send(addr, announce)
	r.send(addr, &wire.Packet{
		Header:  wire.Header{Type: wire.TData, ReqID: id, Handle: h, Offset: 0, Length: uint32(len(data))},
		Payload: data,
	})
	if ack := r.recv(time.Second); ack == nil || ack.Type != wire.TWriteAck {
		t.Fatalf("first ack missing: %+v", ack)
	}
	// The ack was "lost": the client re-announces.
	r.send(addr, announce)
	if ack := r.recv(time.Second); ack == nil || ack.Type != wire.TWriteAck {
		t.Fatalf("duplicate announce not re-acked: %+v", ack)
	}
}

func TestReadStreamsDataWithFLast(t *testing.T) {
	r := newRig(t, Config{})
	// Seed the store directly.
	obj, _ := r.st.Open("obj", true)
	content := bytes.Repeat([]byte("0123456789abcdef"), 600) // 9600 bytes
	obj.WriteAt(content, 0)

	addr, h := r.open("obj", 0)
	id := r.nextReq()
	r.send(addr, &wire.Packet{Header: wire.Header{
		Type: wire.TRead, ReqID: id, Handle: h, Offset: 0, Length: uint32(len(content)),
	}})

	got := make([]byte, len(content))
	received := 0
	sawLast := false
	for received < len(content) {
		p := r.recv(time.Second)
		if p == nil {
			t.Fatalf("stream stalled at %d/%d", received, len(content))
		}
		if p.Type != wire.TData || p.ReqID != id {
			continue
		}
		copy(got[p.Offset:], p.Payload)
		received += len(p.Payload)
		if p.Flags&wire.FLast != 0 {
			sawLast = true
		}
	}
	if !bytes.Equal(got, content) {
		t.Fatal("read stream mismatch")
	}
	if !sawLast {
		t.Fatal("no FLast on final packet")
	}
}

func TestReadPastEOFZeroFills(t *testing.T) {
	r := newRig(t, Config{})
	obj, _ := r.st.Open("obj", true)
	obj.WriteAt([]byte("abc"), 0)

	addr, h := r.open("obj", 0)
	id := r.nextReq()
	r.send(addr, &wire.Packet{Header: wire.Header{
		Type: wire.TRead, ReqID: id, Handle: h, Offset: 0, Length: 100,
	}})
	p := r.recv(time.Second)
	if p == nil || p.Type != wire.TData || len(p.Payload) != 100 {
		t.Fatalf("bad read reply: %+v", p)
	}
	if !bytes.Equal(p.Payload[:3], []byte("abc")) {
		t.Fatal("prefix mismatch")
	}
	for i := 3; i < 100; i++ {
		if p.Payload[i] != 0 {
			t.Fatalf("byte %d not zero-filled", i)
		}
	}
}

func TestStatRemoveList(t *testing.T) {
	r := newRig(t, Config{})
	obj, _ := r.st.Open("a", true)
	obj.WriteAt(make([]byte, 500), 0)
	r.st.Open("b", true)

	// Stat.
	id := r.nextReq()
	r.send(r.agent.Addr(), &wire.Packet{
		Header:  wire.Header{Type: wire.TStat, ReqID: id},
		Payload: wire.AppendOpenRequest(nil, &wire.OpenRequest{Name: "a"}),
	})
	p := r.recv(time.Second)
	if p == nil || p.Type != wire.TStatReply {
		t.Fatalf("stat reply: %+v", p)
	}
	sr, _ := wire.ParseStatReply(p.Payload)
	if !sr.Exists || sr.Size != 500 {
		t.Fatalf("stat = %+v", sr)
	}

	// List.
	id = r.nextReq()
	r.send(r.agent.Addr(), &wire.Packet{Header: wire.Header{Type: wire.TList, ReqID: id}})
	p = r.recv(time.Second)
	if p == nil || p.Type != wire.TListReply || p.Flags&wire.FLast == 0 {
		t.Fatalf("list reply: %+v", p)
	}
	names, err := wire.ParseNames(p.Payload)
	if err != nil || len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v, %v", names, err)
	}

	// Remove.
	id = r.nextReq()
	r.send(r.agent.Addr(), &wire.Packet{
		Header:  wire.Header{Type: wire.TRemove, ReqID: id},
		Payload: wire.AppendOpenRequest(nil, &wire.OpenRequest{Name: "a"}),
	})
	if p = r.recv(time.Second); p == nil || p.Type != wire.TRemoveReply {
		t.Fatalf("remove reply: %+v", p)
	}
	if _, err := r.st.Stat("a"); err != store.ErrNotExist {
		t.Fatal("object not removed")
	}
}

func TestTruncAndSync(t *testing.T) {
	r := newRig(t, Config{})
	obj, _ := r.st.Open("obj", true)
	obj.WriteAt(make([]byte, 1000), 0)
	addr, h := r.open("obj", 0)

	id := r.nextReq()
	r.send(addr, &wire.Packet{Header: wire.Header{Type: wire.TTrunc, ReqID: id, Handle: h, Offset: 100}})
	if p := r.recv(time.Second); p == nil || p.Type != wire.TTruncReply {
		t.Fatalf("trunc reply: %+v", p)
	}
	if sz, _ := r.st.Stat("obj"); sz != 100 {
		t.Fatalf("size after trunc = %d", sz)
	}

	id = r.nextReq()
	r.send(addr, &wire.Packet{Header: wire.Header{Type: wire.TSync, ReqID: id, Handle: h}})
	if p := r.recv(time.Second); p == nil || p.Type != wire.TSyncReply {
		t.Fatalf("sync reply: %+v", p)
	}
}

func TestCloseReleasesSession(t *testing.T) {
	r := newRig(t, Config{})
	addr, h := r.open("obj", wire.FCreate)

	id := r.nextReq()
	r.send(addr, &wire.Packet{Header: wire.Header{Type: wire.TClose, ReqID: id, Handle: h}})
	if p := r.recv(time.Second); p == nil || p.Type != wire.TCloseReply {
		t.Fatalf("close reply: %+v", p)
	}
	r.agent.mu.Lock()
	n := len(r.agent.sessions)
	r.agent.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d sessions remain after close", n)
	}
}

func TestSessionIdleTimeout(t *testing.T) {
	r := newRig(t, Config{
		ResendCheck: 5 * time.Millisecond,
		SessionIdle: 30 * time.Millisecond,
	})
	r.open("obj", wire.FCreate)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		r.agent.mu.Lock()
		n := len(r.agent.sessions)
		r.agent.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("idle session never reaped")
}

func TestMaxSessionsEnforced(t *testing.T) {
	r := newRig(t, Config{MaxSessions: 3})
	for i := 0; i < 3; i++ {
		r.open(fmt.Sprintf("obj%d", i), wire.FCreate)
	}
	if r.agent.SessionCount() != 3 {
		t.Fatalf("sessions = %d", r.agent.SessionCount())
	}
	// The fourth open is rejected.
	id := r.nextReq()
	r.send(r.agent.Addr(), &wire.Packet{
		Header:  wire.Header{Type: wire.TOpen, ReqID: id, Flags: wire.FCreate},
		Payload: wire.AppendOpenRequest(nil, &wire.OpenRequest{Name: "overflow"}),
	})
	reply := r.recv(time.Second)
	if reply == nil || reply.Type != wire.TError {
		t.Fatalf("overflow open = %+v, want TError", reply)
	}
}

func TestPingStatus(t *testing.T) {
	r := newRig(t, Config{})
	obj, _ := r.st.Open("x", true)
	obj.WriteAt(make([]byte, 1234), 0)
	r.open("x", 0)

	id := r.nextReq()
	r.send(r.agent.Addr(), &wire.Packet{Header: wire.Header{Type: wire.TPing, ReqID: id}})
	reply := r.recv(time.Second)
	if reply == nil || reply.Type != wire.TPingReply {
		t.Fatalf("ping reply = %+v", reply)
	}
	pr, err := wire.ParsePingReply(reply.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Objects != 1 || pr.Sessions != 1 || pr.Bytes != 1234 {
		t.Fatalf("ping status = %+v", pr)
	}
}

func TestAgentCloseIsIdempotent(t *testing.T) {
	r := newRig(t, Config{})
	r.open("obj", wire.FCreate)
	if err := r.agent.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.agent.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineExpiredReadShed(t *testing.T) {
	r := newRig(t, Config{})
	obj, _ := r.st.Open("obj", true)
	obj.WriteAt([]byte("abc"), 0)
	addr, h := r.open("obj", 0)

	// Slow the agent at runtime so a tight budget is spent before service.
	r.agent.SetReadDelay(20 * time.Millisecond)
	id := r.nextReq()
	r.send(addr, &wire.Packet{
		Header:   wire.Header{Type: wire.TRead, ReqID: id, Handle: h, Offset: 0, Length: 3},
		Deadline: time.Millisecond,
	})
	p := r.recv(time.Second)
	if p == nil || p.Type != wire.TPushback || p.ReqID != id {
		t.Fatalf("want pushback, got %+v", p)
	}
	info, err := wire.ParsePushback(p.Payload)
	if err != nil || info.Reason != wire.PushDeadlineExpired {
		t.Fatalf("pushback = %+v, %v", info, err)
	}

	// Restore speed: the same request with budget to spare is served.
	r.agent.SetReadDelay(0)
	id = r.nextReq()
	r.send(addr, &wire.Packet{
		Header:   wire.Header{Type: wire.TRead, ReqID: id, Handle: h, Offset: 0, Length: 3},
		Deadline: time.Second,
	})
	if p := r.recv(time.Second); p == nil || p.Type != wire.TData {
		t.Fatalf("want data after recovery, got %+v", p)
	}
}

func TestQueueFullReadShed(t *testing.T) {
	r := newRig(t, Config{MaxInflightReads: 1, ReadDelay: 200 * time.Millisecond})
	obj, _ := r.st.Open("obj", true)
	obj.WriteAt([]byte("abc"), 0)
	addr1, h1 := r.open("obj", 0)
	addr2, h2 := r.open("obj", 0)

	// First read occupies the only service slot (held in the injected
	// delay); the second must be shed with a pacing hint, not queued.
	id1 := r.nextReq()
	r.send(addr1, &wire.Packet{Header: wire.Header{
		Type: wire.TRead, ReqID: id1, Handle: h1, Offset: 0, Length: 3,
	}})
	time.Sleep(20 * time.Millisecond) // let the first read enter service
	id2 := r.nextReq()
	r.send(addr2, &wire.Packet{Header: wire.Header{
		Type: wire.TRead, ReqID: id2, Handle: h2, Offset: 0, Length: 3,
	}})
	p := r.recv(100 * time.Millisecond)
	if p == nil || p.Type != wire.TPushback || p.ReqID != id2 {
		t.Fatalf("want pushback for second read, got %+v", p)
	}
	info, err := wire.ParsePushback(p.Payload)
	if err != nil || info.Reason != wire.PushQueueFull || info.RetryAfter <= 0 {
		t.Fatalf("pushback = %+v, %v", info, err)
	}
	// The first read still completes: shedding is selective.
	for {
		p = r.recv(time.Second)
		if p == nil {
			t.Fatal("first read never completed")
		}
		if p.Type == wire.TData && p.ReqID == id1 {
			return
		}
	}
}

// TestRecycledChunkBufferZeroFills pins the serve-loop recycling
// invariant: the chunk buffers live for the whole session, so a burst
// that reads past EOF must see zeros even when an earlier burst filled
// the same buffer with data.
func TestRecycledChunkBufferZeroFills(t *testing.T) {
	r := newRig(t, Config{})
	obj, _ := r.st.Open("obj", true)
	content := bytes.Repeat([]byte{0xAB}, 512)
	obj.WriteAt(content, 0)

	addr, h := r.open("obj", 0)

	// First burst: fill the recycled buffer with non-zero bytes.
	id := r.nextReq()
	r.send(addr, &wire.Packet{Header: wire.Header{
		Type: wire.TRead, ReqID: id, Handle: h, Offset: 0, Length: 512,
	}})
	for got := 0; got < 512; {
		p := r.recv(time.Second)
		if p == nil {
			t.Fatalf("first burst stalled at %d/512", got)
		}
		if p.Type != wire.TData || p.ReqID != id {
			continue
		}
		got += len(p.Payload)
	}

	// Second burst: entirely past EOF through the same session; the
	// recycled buffer's stale 0xAB bytes must not leak.
	id = r.nextReq()
	r.send(addr, &wire.Packet{Header: wire.Header{
		Type: wire.TRead, ReqID: id, Handle: h, Offset: 4096, Length: 256,
	}})
	p := r.recv(time.Second)
	if p == nil || p.Type != wire.TData || len(p.Payload) != 256 {
		t.Fatalf("bad read reply: %+v", p)
	}
	for i, b := range p.Payload {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want zero-filled past EOF", i, b)
		}
	}
}
