package agent

import (
	"testing"

	"swift/internal/testutil/leakcheck"
)

// TestMain fails the binary if any test leaks a goroutine: every agent
// serve loop must exit when its test closes the agent or its listener.
func TestMain(m *testing.M) { leakcheck.Main(m) }
