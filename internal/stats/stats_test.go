package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestBasics(t *testing.T) {
	var s Sample
	for _, x := range []float64{893, 897, 876, 860, 882, 881, 890, 885} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if !almost(s.Mean(), 883, 0.01) {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 860 || s.Max() != 897 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Std() <= 0 {
		t.Fatalf("std = %v", s.Std())
	}
}

func TestEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 {
		t.Fatal("empty sample nonzero")
	}
	lo, hi := s.CI90()
	if lo != 0 || hi != 0 {
		t.Fatal("empty CI nonzero")
	}
	s.Add(5)
	if s.Mean() != 5 || s.Std() != 0 {
		t.Fatal("single sample wrong")
	}
	lo, hi = s.CI90()
	if lo != 5 || hi != 5 {
		t.Fatal("single-sample CI should collapse to the mean")
	}
}

func TestKnownStd(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	// Sample std of this classic set is sqrt(32/7).
	if !almost(s.Std(), math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("std = %v", s.Std())
	}
}

func TestMedian(t *testing.T) {
	var s Sample
	for _, x := range []float64{5, 1, 3} {
		s.Add(x)
	}
	if s.Median() != 3 {
		t.Fatalf("odd median = %v", s.Median())
	}
	s.Add(7)
	if s.Median() != 4 {
		t.Fatalf("even median = %v", s.Median())
	}
}

func TestCI90EightSamples(t *testing.T) {
	// With n=8, the t critical value is 1.895 (df=7); check the interval
	// construction against a hand computation.
	var s Sample
	xs := []float64{10, 12, 9, 11, 10, 13, 8, 11}
	for _, x := range xs {
		s.Add(x)
	}
	lo, hi := s.CI90()
	h := 1.895 * s.Std() / math.Sqrt(8)
	if !almost(hi-s.Mean(), h, 1e-9) || !almost(s.Mean()-lo, h, 1e-9) {
		t.Fatalf("CI = [%v,%v], half-width want %v", lo, hi, h)
	}
}

func TestTCritical(t *testing.T) {
	if TCritical90(7) != 1.895 {
		t.Fatalf("t(7) = %v", TCritical90(7))
	}
	if TCritical90(100) != 1.645 {
		t.Fatalf("t(100) = %v", TCritical90(100))
	}
	if !math.IsNaN(TCritical90(0)) {
		t.Fatal("t(0) should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	m := s.Summarize()
	if m.N != 2 || m.Mean != 2 || m.Min != 1 || m.Max != 3 {
		t.Fatalf("summary = %+v", m)
	}
	if m.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 {
		t.Fatal("empty percentile nonzero")
	}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5}, {95, 95.05}, {-5, 1}, {200, 100},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("p%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	// Percentiles are monotone.
	prev := s.Percentile(0)
	for p := 1.0; p <= 100; p++ {
		cur := s.Percentile(p)
		if cur < prev {
			t.Fatalf("percentile not monotone at %v", p)
		}
		prev = cur
	}
}

// Quick properties: mean within [min,max]; CI brackets the mean; adding a
// constant shifts mean and CI but not std.
func TestQuickProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		var s Sample
		for i := 0; i < n; i++ {
			s.Add(rng.NormFloat64()*100 + 500)
		}
		m := s.Mean()
		if m < s.Min()-1e-9 || m > s.Max()+1e-9 {
			return false
		}
		lo, hi := s.CI90()
		if lo > m || hi < m {
			return false
		}
		var shifted Sample
		for _, x := range s.Values() {
			shifted.Add(x + 1000)
		}
		return almost(shifted.Mean(), m+1000, 1e-6) &&
			almost(shifted.Std(), s.Std(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
