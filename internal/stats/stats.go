// Package stats provides the summary statistics used throughout the Swift
// measurement harness: mean, standard deviation, extrema, and the 90%
// confidence intervals that the paper reports for its eight-sample runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations and produces summary statistics.
// The zero value is ready to use.
type Sample struct {
	xs []float64
}

// Add appends one observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns a copy of the observations in insertion order.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Std returns the sample standard deviation (n-1 denominator),
// or 0 when fewer than two observations exist.
func (s *Sample) Std() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median observation, or 0 for an empty sample.
func (s *Sample) Median() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	xs := s.Values()
	sort.Float64s(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics, or 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	xs := s.Values()
	sort.Float64s(xs)
	if p <= 0 {
		return xs[0]
	}
	if p >= 100 {
		return xs[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return xs[n-1]
	}
	return xs[lo]*(1-frac) + xs[lo+1]*frac
}

// t90 holds two-sided 90% Student-t critical values indexed by degrees of
// freedom (1-based). Beyond the table the normal value 1.645 is used.
var t90 = []float64{
	0, // df = 0 unused
	6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
	1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
	1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
}

// TCritical90 returns the two-sided 90% Student-t critical value for the
// given degrees of freedom.
func TCritical90(df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if df < len(t90) {
		return t90[df]
	}
	return 1.645
}

// CI90 returns the low and high bounds of the two-sided 90% confidence
// interval for the mean, using the Student-t distribution as the paper does
// for its eight-sample measurements. For fewer than two observations it
// returns the mean for both bounds.
func (s *Sample) CI90() (low, high float64) {
	n := len(s.xs)
	m := s.Mean()
	if n < 2 {
		return m, m
	}
	h := TCritical90(n-1) * s.Std() / math.Sqrt(float64(n))
	return m - h, m + h
}

// Summary is a flattened snapshot of a Sample, convenient for tables.
type Summary struct {
	N        int
	Mean     float64
	Std      float64
	Min      float64
	Max      float64
	CI90Low  float64
	CI90High float64
}

// Summarize captures the sample's statistics.
func (s *Sample) Summarize() Summary {
	lo, hi := s.CI90()
	return Summary{
		N: s.N(), Mean: s.Mean(), Std: s.Std(),
		Min: s.Min(), Max: s.Max(), CI90Low: lo, CI90High: hi,
	}
}

// String formats the summary in the style of the paper's tables
// (mean, sigma, min, max, 90% CI bounds).
func (m Summary) String() string {
	return fmt.Sprintf("x̄=%.0f σ=%.2f min=%.0f max=%.0f 90%%CI=[%.0f,%.0f]",
		m.Mean, m.Std, m.Min, m.Max, m.CI90Low, m.CI90High)
}
