// Package store provides the object stores backing a storage agent. The
// prototype "used file system facilities to name and store objects"; this
// package offers the same contract over three backings: process memory
// (tests, examples), the host file system (deployment), and a modeled disk
// wrapped around either (measured experiments).
package store

import (
	"errors"
	"io"
	"sort"
	"sync"
)

// ErrNotExist is returned for operations on absent objects.
var ErrNotExist = errors.New("store: object does not exist")

// Store names and opens object fragments on one storage agent.
type Store interface {
	// Open opens the named object, creating it when create is set.
	Open(name string, create bool) (Object, error)
	// Stat returns the object's size, or ErrNotExist.
	Stat(name string) (int64, error)
	// Remove deletes the object.
	Remove(name string) error
	// List returns the names of all objects, sorted.
	List() ([]string, error)
}

// Object is one open object fragment. Implementations must support
// concurrent calls (the agent serves each open file from its own handler
// but multiple handlers may share an object).
type Object interface {
	io.ReaderAt
	io.WriterAt
	Size() (int64, error)
	Truncate(size int64) error
	// Sync flushes buffered data to stable storage.
	Sync() error
	Close() error
}

// Mem is an in-memory Store. The zero value is ready to use.
type Mem struct {
	mu   sync.Mutex
	objs map[string]*memObject
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{objs: make(map[string]*memObject)} }

// Open implements Store.
func (m *Mem) Open(name string, create bool) (Object, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.objs == nil {
		m.objs = make(map[string]*memObject)
	}
	o := m.objs[name]
	if o == nil {
		if !create {
			return nil, ErrNotExist
		}
		o = &memObject{}
		m.objs[name] = o
	}
	return o, nil
}

// Stat implements Store.
func (m *Mem) Stat(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o := m.objs[name]
	if o == nil {
		return 0, ErrNotExist
	}
	return o.Size()
}

// Remove implements Store.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.objs[name]; !ok {
		return ErrNotExist
	}
	delete(m.objs, name)
	return nil
}

// List implements Store.
func (m *Mem) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.objs))
	for n := range m.objs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

type memObject struct {
	mu   sync.RWMutex
	data []byte
}

func (o *memObject) ReadAt(p []byte, off int64) (int, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if off < 0 {
		return 0, errors.New("store: negative offset")
	}
	if off >= int64(len(o.data)) {
		return 0, io.EOF
	}
	n := copy(p, o.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (o *memObject) WriteAt(p []byte, off int64) (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if off < 0 {
		return 0, errors.New("store: negative offset")
	}
	end := off + int64(len(p))
	if end > int64(len(o.data)) {
		o.grow(end)
	}
	copy(o.data[off:end], p)
	return len(p), nil
}

// grow extends the object to size bytes, doubling capacity so sequential
// appends stay amortized O(1) per byte (a fresh fragment is appended to
// thousands of times during a striped write).
func (o *memObject) grow(size int64) {
	if size <= int64(cap(o.data)) {
		n := len(o.data)
		o.data = o.data[:size]
		// The reslice exposes old bytes only up to the previous
		// length; clear anything between len and the new size that
		// may hold stale truncated data.
		for i := n; i < int(size); i++ {
			o.data[i] = 0
		}
		return
	}
	newCap := 2 * cap(o.data)
	if int64(newCap) < size {
		newCap = int(size)
	}
	grown := make([]byte, size, newCap)
	copy(grown, o.data)
	o.data = grown
}

func (o *memObject) Size() (int64, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return int64(len(o.data)), nil
}

func (o *memObject) Truncate(size int64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	switch {
	case size < 0:
		return errors.New("store: negative size")
	case size <= int64(len(o.data)):
		o.data = o.data[:size]
	default:
		o.grow(size)
	}
	return nil
}

func (o *memObject) Sync() error  { return nil }
func (o *memObject) Close() error { return nil }
