package store

import (
	"swift/internal/disk"
)

// DiskStore wraps an inner Store and charges the modeled access times of a
// disk.Device for every read and write, so measured experiments see the
// storage agent's local disk, not the speed of process memory. One Device
// (one spindle) serves the whole store, as on the prototype's hosts.
type DiskStore struct {
	inner Store
	dev   *disk.Device
	// SyncWrites forces every write through the synchronous path,
	// regardless of per-request flags (the local-SCSI baseline).
	SyncWrites bool
}

// NewDiskStore wraps inner with the modeled device.
func NewDiskStore(inner Store, dev *disk.Device) *DiskStore {
	return &DiskStore{inner: inner, dev: dev}
}

// Device returns the modeled drive.
func (d *DiskStore) Device() *disk.Device { return d.dev }

// Open implements Store.
func (d *DiskStore) Open(name string, create bool) (Object, error) {
	o, err := d.inner.Open(name, create)
	if err != nil {
		return nil, err
	}
	return &diskObject{inner: o, s: d}, nil
}

// Stat implements Store.
func (d *DiskStore) Stat(name string) (int64, error) { return d.inner.Stat(name) }

// Remove implements Store.
func (d *DiskStore) Remove(name string) error { return d.inner.Remove(name) }

// List implements Store.
func (d *DiskStore) List() ([]string, error) { return d.inner.List() }

type diskObject struct {
	inner Object
	s     *DiskStore
}

func (o *diskObject) ReadAt(p []byte, off int64) (int, error) {
	o.s.dev.Read(off, int64(len(p)))
	return o.inner.ReadAt(p, off)
}

func (o *diskObject) WriteAt(p []byte, off int64) (int, error) {
	o.s.dev.Write(off, int64(len(p)), o.s.SyncWrites)
	return o.inner.WriteAt(p, off)
}

func (o *diskObject) Size() (int64, error)      { return o.inner.Size() }
func (o *diskObject) Truncate(size int64) error { return o.inner.Truncate(size) }

func (o *diskObject) Sync() error {
	o.s.dev.Sync(8192)
	return o.inner.Sync()
}

func (o *diskObject) Close() error { return o.inner.Close() }
