package store

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"swift/internal/disk"
)

// storeFactories returns constructors for every Store implementation so
// the same behavioural suite runs against all of them.
func storeFactories(t *testing.T) map[string]func() Store {
	t.Helper()
	return map[string]func() Store{
		"mem": func() Store { return NewMem() },
		"file": func() Store {
			fs, err := NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return fs
		},
		"disk": func() Store {
			dev := disk.NewDevice(disk.ProfileSunSCSI(),
				disk.WithSleeper(func(time.Duration) {}))
			return NewDiskStore(NewMem(), dev)
		},
	}
}

func TestStoreContract(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()

			// Absent objects.
			if _, err := s.Open("missing", false); err != ErrNotExist {
				t.Fatalf("open missing: %v", err)
			}
			if _, err := s.Stat("missing"); err != ErrNotExist {
				t.Fatalf("stat missing: %v", err)
			}
			if err := s.Remove("missing"); err != ErrNotExist {
				t.Fatalf("remove missing: %v", err)
			}

			// Create, write, read back.
			o, err := s.Open("a", true)
			if err != nil {
				t.Fatalf("create: %v", err)
			}
			data := []byte("hello, fragment")
			if _, err := o.WriteAt(data, 100); err != nil {
				t.Fatalf("write: %v", err)
			}
			if sz, _ := o.Size(); sz != 100+int64(len(data)) {
				t.Fatalf("size = %d", sz)
			}
			got := make([]byte, len(data))
			if _, err := o.ReadAt(got, 100); err != nil && err != io.EOF {
				t.Fatalf("read: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("read mismatch")
			}

			// The hole reads as zeros.
			hole := make([]byte, 100)
			if _, err := o.ReadAt(hole, 0); err != nil {
				t.Fatalf("read hole: %v", err)
			}
			for i, b := range hole {
				if b != 0 {
					t.Fatalf("hole[%d] = %#x", i, b)
				}
			}

			// Reads past EOF return short counts with EOF.
			n, err := o.ReadAt(make([]byte, 50), 100+int64(len(data))-10)
			if n != 10 || err != io.EOF {
				t.Fatalf("eof read = %d, %v", n, err)
			}

			// Truncate shrinks and grows.
			if err := o.Truncate(50); err != nil {
				t.Fatalf("truncate: %v", err)
			}
			if sz, _ := o.Size(); sz != 50 {
				t.Fatalf("size after shrink = %d", sz)
			}
			if err := o.Truncate(200); err != nil {
				t.Fatalf("grow: %v", err)
			}
			if sz, _ := o.Size(); sz != 200 {
				t.Fatalf("size after grow = %d", sz)
			}
			if err := o.Sync(); err != nil {
				t.Fatalf("sync: %v", err)
			}
			if err := o.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			// Stat and List see it; Remove deletes it.
			if sz, err := s.Stat("a"); err != nil || sz != 200 {
				t.Fatalf("stat = %d, %v", sz, err)
			}
			names, err := s.List()
			if err != nil || len(names) != 1 || names[0] != "a" {
				t.Fatalf("list = %v, %v", names, err)
			}
			if err := s.Remove("a"); err != nil {
				t.Fatalf("remove: %v", err)
			}
			if _, err := s.Stat("a"); err != ErrNotExist {
				t.Fatalf("stat after remove: %v", err)
			}
		})
	}
}

func TestFileStoreNameFlattening(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o, err := fs.Open("videos/clip.mpg", true)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	o.WriteAt([]byte("x"), 0)
	o.Close()
	if sz, err := fs.Stat("videos/clip.mpg"); err != nil || sz != 1 {
		t.Fatalf("stat = %d, %v", sz, err)
	}
}

func TestDiskStoreChargesTime(t *testing.T) {
	var mu sync.Mutex
	var total time.Duration
	dev := disk.NewDevice(disk.ProfileSunSCSI(), disk.WithSleeper(func(d time.Duration) {
		mu.Lock()
		total += d
		mu.Unlock()
	}))
	ds := NewDiskStore(NewMem(), dev)
	ds.SyncWrites = true
	o, _ := ds.Open("a", true)
	o.WriteAt(make([]byte, 8192), 0)
	if total < 10*time.Millisecond {
		t.Fatalf("sync write charged only %v", total)
	}
	before := total
	o.ReadAt(make([]byte, 8192), 0)
	if total <= before {
		t.Fatal("read charged nothing")
	}
}

// TestMemQuickAgainstBuffer cross-checks memObject against a plain slice
// model under random WriteAt/ReadAt/Truncate.
func TestMemQuickAgainstBuffer(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewMem()
		o, _ := s.Open("x", true)
		var model []byte
		for i := 0; i < 30; i++ {
			switch rng.Intn(3) {
			case 0: // write
				off := rng.Int63n(2000)
				n := rng.Intn(500)
				b := make([]byte, n)
				rng.Read(b)
				o.WriteAt(b, off)
				if end := off + int64(n); end > int64(len(model)) {
					grown := make([]byte, end)
					copy(grown, model)
					model = grown
				}
				copy(model[off:], b)
			case 1: // truncate
				sz := rng.Int63n(2500)
				o.Truncate(sz)
				if sz <= int64(len(model)) {
					model = model[:sz]
				} else {
					grown := make([]byte, sz)
					copy(grown, model)
					model = grown
				}
			case 2: // read
				if len(model) == 0 {
					continue
				}
				off := rng.Int63n(int64(len(model)))
				n := rng.Intn(500) + 1
				got := make([]byte, n)
				rn, _ := o.ReadAt(got, off)
				want := model[off:]
				if int64(n) < int64(len(want)) {
					want = want[:n]
				}
				if rn != len(want) || !bytes.Equal(got[:rn], want) {
					return false
				}
			}
		}
		sz, _ := o.Size()
		return sz == int64(len(model))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
