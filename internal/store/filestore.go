package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileStore keeps each object fragment as a file under a directory, the
// way the prototype's storage agents used "the standard Unix file system".
// Object names are flattened: path separators become "__".
type FileStore struct {
	dir string
}

// NewFileStore creates (if needed) and opens a directory-backed store.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (f *FileStore) Dir() string { return f.dir }

func (f *FileStore) path(name string) string {
	flat := strings.ReplaceAll(name, string(os.PathSeparator), "__")
	flat = strings.ReplaceAll(flat, "/", "__")
	return filepath.Join(f.dir, flat)
}

// Open implements Store.
func (f *FileStore) Open(name string, create bool) (Object, error) {
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE
	}
	fd, err := os.OpenFile(f.path(name), flags, 0o644)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotExist
	}
	if err != nil {
		return nil, err
	}
	return &fileObject{f: fd}, nil
}

// Stat implements Store.
func (f *FileStore) Stat(name string) (int64, error) {
	fi, err := os.Stat(f.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, ErrNotExist
	}
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Remove implements Store.
func (f *FileStore) Remove(name string) error {
	err := os.Remove(f.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return ErrNotExist
	}
	return err
}

// List implements Store.
func (f *FileStore) List() ([]string, error) {
	ents, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, strings.ReplaceAll(e.Name(), "__", "/"))
		}
	}
	sort.Strings(names)
	return names, nil
}

type fileObject struct {
	f *os.File
}

func (o *fileObject) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o *fileObject) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o *fileObject) Truncate(size int64) error                { return o.f.Truncate(size) }
func (o *fileObject) Sync() error                              { return o.f.Sync() }
func (o *fileObject) Close() error                             { return o.f.Close() }

func (o *fileObject) Size() (int64, error) {
	fi, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
