package localfs

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"swift/internal/disk"
)

func collector() (func(time.Duration), *time.Duration) {
	var mu sync.Mutex
	total := new(time.Duration)
	return func(d time.Duration) {
		mu.Lock()
		*total += d
		mu.Unlock()
	}, total
}

func TestRoundTrip(t *testing.T) {
	sleep, _ := collector()
	fs := New(disk.NewDevice(disk.ProfileSunSCSI(), disk.WithSleeper(sleep)), 0)
	data := make([]byte, 50_000)
	rand.New(rand.NewSource(1)).Read(data)
	if err := fs.WriteFile("f", data); err != nil {
		t.Fatalf("write: %v", err)
	}
	if sz, err := fs.Stat("f"); err != nil || sz != int64(len(data)) {
		t.Fatalf("stat = %d, %v", sz, err)
	}
	out := make([]byte, len(data)+100)
	n, err := fs.ReadFile("f", out)
	if err != nil || n != int64(len(data)) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(out[:n], data) {
		t.Fatal("round trip mismatch")
	}
	if err := fs.Remove("f"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := fs.ReadFile("f", out); err == nil {
		t.Fatal("read after remove succeeded")
	}
}

// TestTable2Rates checks the local-SCSI baseline reproduces the paper's
// Table 2 bands: reads ≈654-682 KB/s, synchronous writes ≈314-316 KB/s.
func TestTable2Rates(t *testing.T) {
	sleep, total := collector()
	fs := New(disk.NewDevice(disk.ProfileSunSCSI(), disk.WithSleeper(sleep), disk.WithSeed(7)), 0)
	data := make([]byte, 3<<20)

	*total = 0
	if err := fs.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	wrate := float64(len(data)) / total.Seconds() / 1024
	if wrate < 290 || wrate > 345 {
		t.Fatalf("write rate = %.0f KB/s, want ≈315", wrate)
	}

	*total = 0
	if _, err := fs.ReadFile("f", data); err != nil {
		t.Fatal(err)
	}
	rrate := float64(len(data)) / total.Seconds() / 1024
	if rrate < 620 || rrate > 720 {
		t.Fatalf("read rate = %.0f KB/s, want ≈654-682", rrate)
	}
}
