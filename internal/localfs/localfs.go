// Package localfs is the paper's local-disk baseline: direct sequential
// access to one modeled SCSI drive through the file system, with
// synchronous writes and read-ahead — the access path measured in Table 2.
package localfs

import (
	"fmt"

	"swift/internal/disk"
	"swift/internal/store"
)

// FS is a local file system on a single modeled drive.
type FS struct {
	ds    *store.DiskStore
	block int64
}

// New creates a local file system on the given device. Writes are
// synchronous (the prototype's local measurements used synchronous SCSI
// writes); reads benefit from the device's sequential read-ahead path.
// block is the file-system transfer size (0 = 8192, SunOS's block size).
func New(dev *disk.Device, block int64) *FS {
	if block == 0 {
		block = 8192
	}
	ds := store.NewDiskStore(store.NewMem(), dev)
	ds.SyncWrites = true
	return &FS{ds: ds, block: block}
}

// BlockSize returns the file-system transfer size.
func (fs *FS) BlockSize() int64 { return fs.block }

// WriteFile writes data sequentially, one file-system block per disk
// operation, synchronously.
func (fs *FS) WriteFile(name string, data []byte) error {
	o, err := fs.ds.Open(name, true)
	if err != nil {
		return fmt.Errorf("localfs: %w", err)
	}
	defer o.Close()
	for off := int64(0); off < int64(len(data)); off += fs.block {
		end := off + fs.block
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		if _, err := o.WriteAt(data[off:end], off); err != nil {
			return fmt.Errorf("localfs: write %s@%d: %w", name, off, err)
		}
	}
	return nil
}

// ReadFile reads the file sequentially into buf, one block per disk
// operation, returning the number of bytes read.
func (fs *FS) ReadFile(name string, buf []byte) (int64, error) {
	o, err := fs.ds.Open(name, false)
	if err != nil {
		return 0, fmt.Errorf("localfs: %w", err)
	}
	defer o.Close()
	size, err := o.Size()
	if err != nil {
		return 0, err
	}
	n := int64(len(buf))
	if n > size {
		n = size
	}
	for off := int64(0); off < n; off += fs.block {
		end := off + fs.block
		if end > n {
			end = n
		}
		if _, err := o.ReadAt(buf[off:end], off); err != nil {
			return off, fmt.Errorf("localfs: read %s@%d: %w", name, off, err)
		}
	}
	return n, nil
}

// Remove deletes a file.
func (fs *FS) Remove(name string) error { return fs.ds.Remove(name) }

// Stat returns a file's size.
func (fs *FS) Stat(name string) (int64, error) { return fs.ds.Stat(name) }
