// Package stripe implements Swift's striping layout: the mapping between a
// logical object's byte space and the per-agent fragment byte spaces.
//
// An object is divided into fixed-size striping units ("the amount of data
// allocated to each storage agent per stripe"). Units are assigned to the
// storage agents round-robin, and each agent packs its units densely into a
// local fragment, so consecutive units on one agent occupy consecutive
// fragment bytes. The storage mediator chooses the unit size from the
// client's data-rate requirement: large units for low rates (few agents
// touched), small units for high rates (maximum parallelism).
//
// With parity enabled, each stripe row holds Agents-1 data units plus one
// computed-copy (XOR) parity unit. The parity unit rotates across agents,
// left-symmetric, so no single agent becomes a parity bottleneck and the
// system tolerates one failed agent per row.
package stripe

import (
	"fmt"

	"swift/internal/extent"
)

// Layout describes how an object is striped over a set of storage agents.
type Layout struct {
	// Unit is the striping unit in bytes (> 0).
	Unit int64
	// Agents is the number of storage agents (>= 1; >= 3 with parity).
	Agents int
	// Parity enables computed-copy redundancy: one rotating XOR parity
	// unit per stripe row.
	Parity bool
}

// Validate reports whether the layout parameters are usable.
func (l Layout) Validate() error {
	if l.Unit <= 0 {
		return fmt.Errorf("stripe: unit must be positive, got %d", l.Unit)
	}
	if l.Agents < 1 {
		return fmt.Errorf("stripe: need at least one agent, got %d", l.Agents)
	}
	if l.Parity && l.Agents < 3 {
		return fmt.Errorf("stripe: parity requires at least 3 agents, got %d", l.Agents)
	}
	return nil
}

// DataPerRow returns the number of data units per stripe row.
func (l Layout) DataPerRow() int {
	if l.Parity {
		return l.Agents - 1
	}
	return l.Agents
}

// RowBytes returns the number of logical (data) bytes per stripe row.
func (l Layout) RowBytes() int64 { return l.Unit * int64(l.DataPerRow()) }

// ParityAgent returns the agent holding the parity unit of the given row.
// It is only meaningful when parity is enabled.
func (l Layout) ParityAgent(row int64) int {
	return int(int64(l.Agents-1) - row%int64(l.Agents))
}

// DataAgent returns the agent holding the j-th data unit (0-based) of the
// given row.
func (l Layout) DataAgent(row int64, j int) int {
	if !l.Parity {
		return j
	}
	return (l.ParityAgent(row) + 1 + j) % l.Agents
}

// dataPos returns the position j such that DataAgent(row, j) == agent, or
// -1 if the agent holds parity in that row.
func (l Layout) dataPos(row int64, agent int) int {
	if !l.Parity {
		return agent
	}
	p := l.ParityAgent(row)
	if agent == p {
		return -1
	}
	j := agent - p - 1
	if j < 0 {
		j += l.Agents
	}
	return j
}

// Locate maps a logical byte offset to (agent, fragment offset).
func (l Layout) Locate(g int64) (agent int, local int64) {
	u := g / l.Unit  // logical data unit index
	in := g % l.Unit // offset within the unit
	d := int64(l.DataPerRow())
	row := u / d
	j := int(u % d)
	return l.DataAgent(row, j), row*l.Unit + in
}

// GlobalOf maps (agent, fragment offset) back to the logical byte offset.
// isData is false when the fragment byte belongs to a parity unit, in which
// case g is undefined.
func (l Layout) GlobalOf(agent int, local int64) (g int64, isData bool) {
	row := local / l.Unit
	in := local % l.Unit
	j := l.dataPos(row, agent)
	if j < 0 {
		return 0, false
	}
	u := row*int64(l.DataPerRow()) + int64(j)
	return u*l.Unit + in, true
}

// ParityLocal returns the fragment offset of the parity unit of the given
// row on its parity agent.
func (l Layout) ParityLocal(row int64) int64 { return row * l.Unit }

// RowOfGlobal returns the stripe row containing logical offset g.
func (l Layout) RowOfGlobal(g int64) int64 { return g / l.RowBytes() }

// RowGlobalSpan returns the logical byte range [off, off+n) covered by the
// data units of the given row.
func (l Layout) RowGlobalSpan(row int64) (off, n int64) {
	return row * l.RowBytes(), l.RowBytes()
}

// Run is a contiguous piece of a logical request mapped onto one agent's
// fragment space.
type Run struct {
	Agent  int
	Local  int64 // fragment offset
	Global int64 // logical offset of the first byte
	Length int64
}

// Runs decomposes the logical range [off, off+n) into per-unit runs in
// ascending logical order. Each run lies within a single striping unit.
func (l Layout) Runs(off, n int64) []Run {
	var out []Run
	end := off + n
	for g := off; g < end; {
		agent, local := l.Locate(g)
		in := g % l.Unit
		take := l.Unit - in
		if g+take > end {
			take = end - g
		}
		out = append(out, Run{Agent: agent, Local: local, Global: g, Length: take})
		g += take
	}
	return out
}

// LocalExtents maps the logical range [off, off+n) to per-agent fragment
// extent sets, with adjacent fragment ranges merged. The result is indexed
// by agent.
func (l Layout) LocalExtents(off, n int64) []extent.Set {
	sets := make([]extent.Set, l.Agents)
	for _, r := range l.Runs(off, n) {
		sets[r.Agent].Add(r.Local, r.Length)
	}
	return sets
}

// SizeFromFragments reconstructs the logical object size from the per-agent
// fragment sizes. Fragment bytes belonging to parity units are ignored.
//
// In degraded mode (a fragment size unknown), pass -1 for that agent; the
// reconstruction then reflects only the surviving fragments and may
// understate the size if the failed agent held the final data unit.
func (l Layout) SizeFromFragments(frag []int64) int64 {
	var size int64
	for a := 0; a < l.Agents && a < len(frag); a++ {
		fa := frag[a]
		if fa <= 0 {
			continue
		}
		// Walk back at most Agents+1 rows to find this agent's last
		// data byte (each agent holds parity at most once per Agents
		// consecutive rows).
		lastRow := (fa - 1) / l.Unit
		for row := lastRow; row >= 0 && row > lastRow-int64(l.Agents)-1; row-- {
			if l.dataPos(row, a) < 0 {
				continue
			}
			localEnd := (row + 1) * l.Unit
			if fa < localEnd {
				localEnd = fa
			}
			if localEnd <= row*l.Unit {
				continue
			}
			g, ok := l.GlobalOf(a, localEnd-1)
			if ok && g+1 > size {
				size = g + 1
			}
			break
		}
	}
	return size
}

// FragmentSizes returns the expected fragment size for each agent of an
// object whose logical size is size, assuming a densely written prefix.
// Parity units are counted as full units (the engine always writes whole
// parity units).
func (l Layout) FragmentSizes(size int64) []int64 {
	frag := make([]int64, l.Agents)
	if size <= 0 {
		return frag
	}
	// Data bytes.
	for g := int64(0); g < size; {
		agent, local := l.Locate(g)
		take := l.Unit - g%l.Unit
		if g+take > size {
			take = size - g
		}
		if end := local + take; end > frag[agent] {
			frag[agent] = end
		}
		g += take
	}
	if l.Parity {
		lastRow := l.RowOfGlobal(size - 1)
		for row := int64(0); row <= lastRow; row++ {
			a := l.ParityAgent(row)
			if end := (row + 1) * l.Unit; end > frag[a] {
				frag[a] = end
			}
		}
	}
	return frag
}
