// Package stripe implements Swift's striping layout: the mapping between a
// logical object's byte space and the per-agent fragment byte spaces.
//
// An object is divided into fixed-size striping units ("the amount of data
// allocated to each storage agent per stripe"). Units are assigned to the
// storage agents round-robin, and each agent packs its units densely into a
// local fragment, so consecutive units on one agent occupy consecutive
// fragment bytes. The storage mediator chooses the unit size from the
// client's data-rate requirement: large units for low rates (few agents
// touched), small units for high rates (maximum parallelism).
//
// With parity enabled, each stripe row holds Agents-k data units plus k
// computed-copy parity units (XOR for k=1, Reed–Solomon for k>=2). The
// parity units rotate across agents, left-symmetric, so no single agent
// becomes a parity bottleneck and the system tolerates up to k failed
// agents per row. The legacy single-parity layout is exactly the k=1
// case: agent assignments and fragment offsets are unchanged.
package stripe

import (
	"fmt"

	"swift/internal/extent"
)

// Layout describes how an object is striped over a set of storage agents.
type Layout struct {
	// Unit is the striping unit in bytes (> 0).
	Unit int64
	// Agents is the number of storage agents (>= 1; >= ParityPerRow()+2
	// with parity).
	Agents int
	// Parity enables computed-copy redundancy: rotating parity units in
	// every stripe row. With ParityUnits zero this is the legacy single
	// XOR unit per row.
	Parity bool
	// ParityUnits is the number of parity units per row (k). Zero means
	// 1 when Parity is set. Values >= 2 select Reed–Solomon coding and
	// tolerate up to k failed agents per row.
	ParityUnits int
}

// ParityPerRow returns the effective number of parity units per stripe
// row: 0 without parity, max(1, ParityUnits) with it.
func (l Layout) ParityPerRow() int {
	if !l.Parity && l.ParityUnits == 0 {
		return 0
	}
	if l.ParityUnits > 0 {
		return l.ParityUnits
	}
	return 1
}

// Validate reports whether the layout parameters are usable.
func (l Layout) Validate() error {
	if l.Unit <= 0 {
		return fmt.Errorf("stripe: unit must be positive, got %d", l.Unit)
	}
	if l.Agents < 1 {
		return fmt.Errorf("stripe: need at least one agent, got %d", l.Agents)
	}
	if l.ParityUnits < 0 {
		return fmt.Errorf("stripe: parity units must be non-negative, got %d", l.ParityUnits)
	}
	if k := l.ParityPerRow(); k > 0 && l.Agents < k+2 {
		if k == 1 {
			return fmt.Errorf("stripe: parity requires at least 3 agents, got %d", l.Agents)
		}
		return fmt.Errorf("stripe: %d parity units require at least %d agents (2+ data units), got %d",
			k, k+2, l.Agents)
	}
	return nil
}

// DataPerRow returns the number of data units per stripe row.
func (l Layout) DataPerRow() int { return l.Agents - l.ParityPerRow() }

// RowBytes returns the number of logical (data) bytes per stripe row.
func (l Layout) RowBytes() int64 { return l.Unit * int64(l.DataPerRow()) }

// parityBase returns the agent holding the row's first parity unit. The
// base rotates left by k agents per row so every parity unit moves and
// no agent becomes a parity bottleneck; at k=1 this is exactly the
// legacy left-symmetric rotation Agents-1 - row%Agents.
func (l Layout) parityBase(row int64) int {
	k := int64(l.ParityPerRow())
	a := int64(l.Agents)
	return int((int64(l.Agents-1) - (row*k)%a + a) % a)
}

// ParityAgent returns the agent holding the first parity unit of the
// given row. It is only meaningful when parity is enabled.
func (l Layout) ParityAgent(row int64) int { return l.parityBase(row) }

// ParityAgentAt returns the agent holding the j-th parity unit (0-based,
// j < ParityPerRow) of the given row.
func (l Layout) ParityAgentAt(row int64, j int) int {
	return (l.parityBase(row) + j) % l.Agents
}

// DataAgent returns the agent holding the j-th data unit (0-based) of the
// given row.
func (l Layout) DataAgent(row int64, j int) int {
	k := l.ParityPerRow()
	if k == 0 {
		return j
	}
	return (l.parityBase(row) + k + j) % l.Agents
}

// dataPos returns the position j such that DataAgent(row, j) == agent, or
// -1 if the agent holds parity in that row.
func (l Layout) dataPos(row int64, agent int) int {
	k := l.ParityPerRow()
	if k == 0 {
		return agent
	}
	d := agent - l.parityBase(row)
	if d < 0 {
		d += l.Agents
	}
	if d < k {
		return -1
	}
	return d - k
}

// DataPos returns the data position j such that DataAgent(row, j) ==
// agent, or -1 if the agent holds parity in that row.
func (l Layout) DataPos(row int64, agent int) int { return l.dataPos(row, agent) }

// ParityPos returns the parity position j such that
// ParityAgentAt(row, j) == agent, or -1 if the agent holds data in that
// row (or parity is disabled).
func (l Layout) ParityPos(row int64, agent int) int {
	k := l.ParityPerRow()
	if k == 0 {
		return -1
	}
	d := agent - l.parityBase(row)
	if d < 0 {
		d += l.Agents
	}
	if d < k {
		return d
	}
	return -1
}

// Locate maps a logical byte offset to (agent, fragment offset).
func (l Layout) Locate(g int64) (agent int, local int64) {
	u := g / l.Unit  // logical data unit index
	in := g % l.Unit // offset within the unit
	d := int64(l.DataPerRow())
	row := u / d
	j := int(u % d)
	return l.DataAgent(row, j), row*l.Unit + in
}

// GlobalOf maps (agent, fragment offset) back to the logical byte offset.
// isData is false when the fragment byte belongs to a parity unit, in which
// case g is undefined.
func (l Layout) GlobalOf(agent int, local int64) (g int64, isData bool) {
	row := local / l.Unit
	in := local % l.Unit
	j := l.dataPos(row, agent)
	if j < 0 {
		return 0, false
	}
	u := row*int64(l.DataPerRow()) + int64(j)
	return u*l.Unit + in, true
}

// ParityLocal returns the fragment offset of the parity unit of the given
// row on its parity agent.
func (l Layout) ParityLocal(row int64) int64 { return row * l.Unit }

// RowOfGlobal returns the stripe row containing logical offset g.
func (l Layout) RowOfGlobal(g int64) int64 { return g / l.RowBytes() }

// RowGlobalSpan returns the logical byte range [off, off+n) covered by the
// data units of the given row.
func (l Layout) RowGlobalSpan(row int64) (off, n int64) {
	return row * l.RowBytes(), l.RowBytes()
}

// Run is a contiguous piece of a logical request mapped onto one agent's
// fragment space.
type Run struct {
	Agent  int
	Local  int64 // fragment offset
	Global int64 // logical offset of the first byte
	Length int64
}

// Runs decomposes the logical range [off, off+n) into per-unit runs in
// ascending logical order. Each run lies within a single striping unit.
// It is AppendRuns with fresh storage; hot callers pass a reusable
// scratch slice to AppendRuns instead.
func (l Layout) Runs(off, n int64) []Run {
	return l.AppendRuns(nil, off, n)
}

// AppendRuns appends the decomposition of [off, off+n) to dst and
// returns the extended slice, so per-op planning on the data path can
// reuse one scratch slice instead of allocating per call.
//
//swift:hotpath
func (l Layout) AppendRuns(out []Run, off, n int64) []Run {
	end := off + n
	for g := off; g < end; {
		agent, local := l.Locate(g)
		in := g % l.Unit
		take := l.Unit - in
		if g+take > end {
			take = end - g
		}
		out = append(out, Run{Agent: agent, Local: local, Global: g, Length: take})
		g += take
	}
	return out
}

// LocalExtents maps the logical range [off, off+n) to per-agent fragment
// extent sets, with adjacent fragment ranges merged. The result is indexed
// by agent.
func (l Layout) LocalExtents(off, n int64) []extent.Set {
	sets := make([]extent.Set, l.Agents)
	for _, r := range l.Runs(off, n) {
		sets[r.Agent].Add(r.Local, r.Length)
	}
	return sets
}

// SizeFromFragments reconstructs the logical object size from the per-agent
// fragment sizes. Fragment bytes belonging to parity units are ignored.
//
// In degraded mode (a fragment size unknown), pass -1 for that agent; the
// reconstruction then reflects only the surviving fragments and may
// understate the size if the failed agent held the final data unit.
func (l Layout) SizeFromFragments(frag []int64) int64 {
	var size int64
	for a := 0; a < l.Agents && a < len(frag); a++ {
		fa := frag[a]
		if fa <= 0 {
			continue
		}
		// Walk back at most Agents+1 rows to find this agent's last
		// data byte. The rotation gives every agent (Agents-k)/gcd(k,
		// Agents) >= 1 data rows per period of Agents/gcd(k, Agents)
		// <= Agents rows, so an agent never holds parity for more than
		// Agents consecutive rows.
		lastRow := (fa - 1) / l.Unit
		for row := lastRow; row >= 0 && row > lastRow-int64(l.Agents)-1; row-- {
			if l.dataPos(row, a) < 0 {
				continue
			}
			localEnd := (row + 1) * l.Unit
			if fa < localEnd {
				localEnd = fa
			}
			if localEnd <= row*l.Unit {
				continue
			}
			g, ok := l.GlobalOf(a, localEnd-1)
			if ok && g+1 > size {
				size = g + 1
			}
			break
		}
	}
	return size
}

// FragmentSizes returns the expected fragment size for each agent of an
// object whose logical size is size, assuming a densely written prefix.
// Parity units are counted as full units (the engine always writes whole
// parity units).
func (l Layout) FragmentSizes(size int64) []int64 {
	frag := make([]int64, l.Agents)
	if size <= 0 {
		return frag
	}
	// Data bytes.
	for g := int64(0); g < size; {
		agent, local := l.Locate(g)
		take := l.Unit - g%l.Unit
		if g+take > size {
			take = size - g
		}
		if end := local + take; end > frag[agent] {
			frag[agent] = end
		}
		g += take
	}
	if k := l.ParityPerRow(); k > 0 {
		lastRow := l.RowOfGlobal(size - 1)
		for row := int64(0); row <= lastRow; row++ {
			for j := 0; j < k; j++ {
				a := l.ParityAgentAt(row, j)
				if end := (row + 1) * l.Unit; end > frag[a] {
					frag[a] = end
				}
			}
		}
	}
	return frag
}
