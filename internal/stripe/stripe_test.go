package stripe

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func layouts() []Layout {
	return []Layout{
		{Unit: 4096, Agents: 1},
		{Unit: 4096, Agents: 3},
		{Unit: 1000, Agents: 4},
		{Unit: 32768, Agents: 8},
		{Unit: 4096, Agents: 3, Parity: true},
		{Unit: 1000, Agents: 4, Parity: true},
		{Unit: 8192, Agents: 7, Parity: true},
	}
}

func TestValidate(t *testing.T) {
	bad := []Layout{
		{Unit: 0, Agents: 3},
		{Unit: -5, Agents: 3},
		{Unit: 4096, Agents: 0},
		{Unit: 4096, Agents: 2, Parity: true},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("layout %+v validated", l)
		}
	}
	for _, l := range layouts() {
		if err := l.Validate(); err != nil {
			t.Errorf("layout %+v rejected: %v", l, err)
		}
	}
}

func TestLocateGlobalOfRoundTrip(t *testing.T) {
	for _, l := range layouts() {
		for g := int64(0); g < 20*l.RowBytes(); g += l.Unit/3 + 1 {
			a, local := l.Locate(g)
			back, ok := l.GlobalOf(a, local)
			if !ok {
				t.Fatalf("%+v: Locate(%d) -> (%d,%d) lands on parity", l, g, a, local)
			}
			if back != g {
				t.Fatalf("%+v: GlobalOf(Locate(%d)) = %d", l, g, back)
			}
		}
	}
}

func TestLocateQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := layouts()[rng.Intn(len(layouts()))]
		g := rng.Int63n(1 << 40)
		a, local := l.Locate(g)
		if a < 0 || a >= l.Agents || local < 0 {
			return false
		}
		back, ok := l.GlobalOf(a, local)
		return ok && back == g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParityAgentRotates(t *testing.T) {
	l := Layout{Unit: 4096, Agents: 5, Parity: true}
	seen := make(map[int]int)
	for r := int64(0); r < 5; r++ {
		seen[l.ParityAgent(r)]++
	}
	if len(seen) != 5 {
		t.Fatalf("parity hit only %d agents in one cycle", len(seen))
	}
	// And the parity agent never coincides with a data agent of the row.
	for r := int64(0); r < 20; r++ {
		p := l.ParityAgent(r)
		for j := 0; j < l.DataPerRow(); j++ {
			if l.DataAgent(r, j) == p {
				t.Fatalf("row %d: data agent %d equals parity agent", r, j)
			}
		}
	}
}

func TestDataAgentsCoverRow(t *testing.T) {
	for _, l := range layouts() {
		for r := int64(0); r < 10; r++ {
			used := make(map[int]bool)
			for j := 0; j < l.DataPerRow(); j++ {
				a := l.DataAgent(r, j)
				if used[a] {
					t.Fatalf("%+v row %d: agent %d used twice", l, r, a)
				}
				used[a] = true
			}
		}
	}
}

// TestRunsPartition verifies that Runs exactly tiles the requested range:
// runs are in ascending global order, contiguous, and map consistently.
func TestRunsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := layouts()[rng.Intn(len(layouts()))]
		off := rng.Int63n(1 << 30)
		n := rng.Int63n(20*l.Unit) + 1
		runs := l.Runs(off, n)
		pos := off
		for _, r := range runs {
			if r.Global != pos || r.Length <= 0 || r.Length > l.Unit {
				return false
			}
			a, local := l.Locate(r.Global)
			if a != r.Agent || local != r.Local {
				return false
			}
			// A run never crosses a unit boundary.
			if r.Global/l.Unit != (r.Global+r.Length-1)/l.Unit {
				return false
			}
			pos += r.Length
		}
		return pos == off+n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalExtentsMergeAndCover(t *testing.T) {
	// A full-stripe-aligned request yields one contiguous extent per
	// agent, and total extent bytes equal the request size.
	l := Layout{Unit: 4096, Agents: 3}
	sets := l.LocalExtents(0, 12*4096)
	var total int64
	for a, s := range sets {
		if s.Len() != 1 {
			t.Fatalf("agent %d extents = %d, want 1 (%s)", a, s.Len(), s.String())
		}
		total += s.Total()
	}
	if total != 12*4096 {
		t.Fatalf("total = %d", total)
	}
}

func TestLocalExtentsTotalQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := layouts()[rng.Intn(len(layouts()))]
		off := rng.Int63n(1 << 28)
		n := rng.Int63n(30*l.Unit) + 1
		var total int64
		for _, s := range l.LocalExtents(off, n) {
			total += s.Total()
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeFromFragmentsInvertsFragmentSizes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := layouts()[rng.Intn(len(layouts()))]
		size := rng.Int63n(50*l.Unit) + 1
		return l.SizeFromFragments(l.FragmentSizes(size)) == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeFromFragmentsDegraded(t *testing.T) {
	// With one fragment unknown (-1), the size never overstates.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := layouts()[rng.Intn(len(layouts()))]
		size := rng.Int63n(50*l.Unit) + 1
		frag := l.FragmentSizes(size)
		frag[rng.Intn(l.Agents)] = -1
		return l.SizeFromFragments(frag) <= size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeZeroAndEmpty(t *testing.T) {
	l := Layout{Unit: 4096, Agents: 3}
	if got := l.SizeFromFragments(l.FragmentSizes(0)); got != 0 {
		t.Fatalf("size(0) = %d", got)
	}
	if got := l.SizeFromFragments(nil); got != 0 {
		t.Fatalf("size(nil) = %d", got)
	}
}

func TestRowHelpers(t *testing.T) {
	l := Layout{Unit: 1000, Agents: 4, Parity: true}
	if l.RowBytes() != 3000 {
		t.Fatalf("row bytes = %d", l.RowBytes())
	}
	if l.RowOfGlobal(2999) != 0 || l.RowOfGlobal(3000) != 1 {
		t.Fatal("row of global wrong")
	}
	off, n := l.RowGlobalSpan(2)
	if off != 6000 || n != 3000 {
		t.Fatalf("row span = (%d,%d)", off, n)
	}
	if l.ParityLocal(5) != 5000 {
		t.Fatalf("parity local = %d", l.ParityLocal(5))
	}
}
