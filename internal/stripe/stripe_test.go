package stripe

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func layouts() []Layout {
	return []Layout{
		{Unit: 4096, Agents: 1},
		{Unit: 4096, Agents: 3},
		{Unit: 1000, Agents: 4},
		{Unit: 32768, Agents: 8},
		{Unit: 4096, Agents: 3, Parity: true},
		{Unit: 1000, Agents: 4, Parity: true},
		{Unit: 8192, Agents: 7, Parity: true},
		{Unit: 4096, Agents: 4, Parity: true, ParityUnits: 2},
		{Unit: 1000, Agents: 5, Parity: true, ParityUnits: 2},
		{Unit: 8192, Agents: 6, Parity: true, ParityUnits: 2},
		{Unit: 2048, Agents: 7, Parity: true, ParityUnits: 3},
		{Unit: 512, Agents: 6, Parity: true, ParityUnits: 4},
	}
}

func TestValidate(t *testing.T) {
	bad := []Layout{
		{Unit: 0, Agents: 3},
		{Unit: -5, Agents: 3},
		{Unit: 4096, Agents: 0},
		{Unit: 4096, Agents: 2, Parity: true},
		{Unit: 4096, Agents: 3, Parity: true, ParityUnits: 2},
		{Unit: 4096, Agents: 5, Parity: true, ParityUnits: 4},
		{Unit: 4096, Agents: 5, ParityUnits: -1},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("layout %+v validated", l)
		}
	}
	for _, l := range layouts() {
		if err := l.Validate(); err != nil {
			t.Errorf("layout %+v rejected: %v", l, err)
		}
	}
}

func TestLocateGlobalOfRoundTrip(t *testing.T) {
	for _, l := range layouts() {
		for g := int64(0); g < 20*l.RowBytes(); g += l.Unit/3 + 1 {
			a, local := l.Locate(g)
			back, ok := l.GlobalOf(a, local)
			if !ok {
				t.Fatalf("%+v: Locate(%d) -> (%d,%d) lands on parity", l, g, a, local)
			}
			if back != g {
				t.Fatalf("%+v: GlobalOf(Locate(%d)) = %d", l, g, back)
			}
		}
	}
}

func TestLocateQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := layouts()[rng.Intn(len(layouts()))]
		g := rng.Int63n(1 << 40)
		a, local := l.Locate(g)
		if a < 0 || a >= l.Agents || local < 0 {
			return false
		}
		back, ok := l.GlobalOf(a, local)
		return ok && back == g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParityAgentRotates(t *testing.T) {
	l := Layout{Unit: 4096, Agents: 5, Parity: true}
	seen := make(map[int]int)
	for r := int64(0); r < 5; r++ {
		seen[l.ParityAgent(r)]++
	}
	if len(seen) != 5 {
		t.Fatalf("parity hit only %d agents in one cycle", len(seen))
	}
	// And the parity agent never coincides with a data agent of the row.
	for r := int64(0); r < 20; r++ {
		p := l.ParityAgent(r)
		for j := 0; j < l.DataPerRow(); j++ {
			if l.DataAgent(r, j) == p {
				t.Fatalf("row %d: data agent %d equals parity agent", r, j)
			}
		}
	}
}

// TestLegacyParityPlacementUnchanged pins the k=1 layout to the legacy
// formulas: objects written by the single-XOR engine keep their exact
// unit placement under the generalized rotation.
func TestLegacyParityPlacementUnchanged(t *testing.T) {
	for _, agents := range []int{3, 4, 5, 7, 8} {
		l := Layout{Unit: 4096, Agents: agents, Parity: true}
		for r := int64(0); r < int64(4*agents); r++ {
			legacyP := int(int64(agents-1) - r%int64(agents))
			if got := l.ParityAgent(r); got != legacyP {
				t.Fatalf("agents=%d row=%d: ParityAgent=%d want legacy %d", agents, r, got, legacyP)
			}
			if got := l.ParityAgentAt(r, 0); got != legacyP {
				t.Fatalf("agents=%d row=%d: ParityAgentAt(0)=%d want %d", agents, r, got, legacyP)
			}
			for j := 0; j < agents-1; j++ {
				legacyD := (legacyP + 1 + j) % agents
				if got := l.DataAgent(r, j); got != legacyD {
					t.Fatalf("agents=%d row=%d j=%d: DataAgent=%d want legacy %d", agents, r, j, got, legacyD)
				}
			}
		}
	}
}

// TestRowPartition verifies that in every row the k parity agents and
// m data agents partition the agent set: each agent holds exactly one
// unit per row, and ParityPos/dataPos agree on which kind.
func TestRowPartition(t *testing.T) {
	for _, l := range layouts() {
		k := l.ParityPerRow()
		for r := int64(0); r < 3*int64(l.Agents); r++ {
			kind := make(map[int]string)
			for j := 0; j < k; j++ {
				a := l.ParityAgentAt(r, j)
				if kind[a] != "" {
					t.Fatalf("%+v row %d: agent %d assigned twice", l, r, a)
				}
				kind[a] = "parity"
				if got := l.ParityPos(r, a); got != j {
					t.Fatalf("%+v row %d: ParityPos(%d)=%d want %d", l, r, a, got, j)
				}
				if l.dataPos(r, a) != -1 {
					t.Fatalf("%+v row %d: parity agent %d has dataPos", l, r, a)
				}
			}
			for j := 0; j < l.DataPerRow(); j++ {
				a := l.DataAgent(r, j)
				if kind[a] != "" {
					t.Fatalf("%+v row %d: agent %d assigned twice (%s)", l, r, a, kind[a])
				}
				kind[a] = "data"
				if got := l.dataPos(r, a); got != j {
					t.Fatalf("%+v row %d: dataPos(%d)=%d want %d", l, r, a, got, j)
				}
				if l.ParityPos(r, a) != -1 {
					t.Fatalf("%+v row %d: data agent %d has ParityPos", l, r, a)
				}
			}
			if len(kind) != l.Agents {
				t.Fatalf("%+v row %d: %d agents assigned, want %d", l, r, len(kind), l.Agents)
			}
		}
	}
}

// TestParityRotationCoverage: over enough rows every agent holds data at
// least once per Agents consecutive rows — the invariant backing the
// SizeFromFragments walk-back bound.
func TestParityRotationCoverage(t *testing.T) {
	for _, l := range layouts() {
		if l.ParityPerRow() == 0 {
			continue
		}
		run := make(map[int]int)
		for r := int64(0); r < 10*int64(l.Agents); r++ {
			for a := 0; a < l.Agents; a++ {
				if l.ParityPos(r, a) >= 0 {
					run[a]++
					if run[a] > l.Agents {
						t.Fatalf("%+v: agent %d holds parity for > %d consecutive rows", l, a, l.Agents)
					}
				} else {
					run[a] = 0
				}
			}
		}
	}
}

func TestDataAgentsCoverRow(t *testing.T) {
	for _, l := range layouts() {
		for r := int64(0); r < 10; r++ {
			used := make(map[int]bool)
			for j := 0; j < l.DataPerRow(); j++ {
				a := l.DataAgent(r, j)
				if used[a] {
					t.Fatalf("%+v row %d: agent %d used twice", l, r, a)
				}
				used[a] = true
			}
		}
	}
}

// TestRunsPartition verifies that Runs exactly tiles the requested range:
// runs are in ascending global order, contiguous, and map consistently.
func TestRunsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := layouts()[rng.Intn(len(layouts()))]
		off := rng.Int63n(1 << 30)
		n := rng.Int63n(20*l.Unit) + 1
		runs := l.Runs(off, n)
		pos := off
		for _, r := range runs {
			if r.Global != pos || r.Length <= 0 || r.Length > l.Unit {
				return false
			}
			a, local := l.Locate(r.Global)
			if a != r.Agent || local != r.Local {
				return false
			}
			// A run never crosses a unit boundary.
			if r.Global/l.Unit != (r.Global+r.Length-1)/l.Unit {
				return false
			}
			pos += r.Length
		}
		return pos == off+n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalExtentsMergeAndCover(t *testing.T) {
	// A full-stripe-aligned request yields one contiguous extent per
	// agent, and total extent bytes equal the request size.
	l := Layout{Unit: 4096, Agents: 3}
	sets := l.LocalExtents(0, 12*4096)
	var total int64
	for a, s := range sets {
		if s.Len() != 1 {
			t.Fatalf("agent %d extents = %d, want 1 (%s)", a, s.Len(), s.String())
		}
		total += s.Total()
	}
	if total != 12*4096 {
		t.Fatalf("total = %d", total)
	}
}

func TestLocalExtentsTotalQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := layouts()[rng.Intn(len(layouts()))]
		off := rng.Int63n(1 << 28)
		n := rng.Int63n(30*l.Unit) + 1
		var total int64
		for _, s := range l.LocalExtents(off, n) {
			total += s.Total()
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeFromFragmentsInvertsFragmentSizes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := layouts()[rng.Intn(len(layouts()))]
		size := rng.Int63n(50*l.Unit) + 1
		return l.SizeFromFragments(l.FragmentSizes(size)) == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeFromFragmentsDegraded(t *testing.T) {
	// With one fragment unknown (-1), the size never overstates.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := layouts()[rng.Intn(len(layouts()))]
		size := rng.Int63n(50*l.Unit) + 1
		frag := l.FragmentSizes(size)
		frag[rng.Intn(l.Agents)] = -1
		return l.SizeFromFragments(frag) <= size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeZeroAndEmpty(t *testing.T) {
	l := Layout{Unit: 4096, Agents: 3}
	if got := l.SizeFromFragments(l.FragmentSizes(0)); got != 0 {
		t.Fatalf("size(0) = %d", got)
	}
	if got := l.SizeFromFragments(nil); got != 0 {
		t.Fatalf("size(nil) = %d", got)
	}
}

func TestRowHelpers(t *testing.T) {
	l := Layout{Unit: 1000, Agents: 4, Parity: true}
	if l.RowBytes() != 3000 {
		t.Fatalf("row bytes = %d", l.RowBytes())
	}
	if l.RowOfGlobal(2999) != 0 || l.RowOfGlobal(3000) != 1 {
		t.Fatal("row of global wrong")
	}
	off, n := l.RowGlobalSpan(2)
	if off != 6000 || n != 3000 {
		t.Fatalf("row span = (%d,%d)", off, n)
	}
	if l.ParityLocal(5) != 5000 {
		t.Fatalf("parity local = %d", l.ParityLocal(5))
	}
}
