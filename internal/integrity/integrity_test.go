package integrity

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"swift/internal/store"
)

func openObj(t *testing.T, s *Store, name string) store.Object {
	t.Helper()
	o, err := s.Open(name, true)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	return o
}

func readAll(t *testing.T, o store.Object) []byte {
	t.Helper()
	n, err := o.Size()
	if err != nil {
		t.Fatalf("size: %v", err)
	}
	buf := make([]byte, n)
	if n == 0 {
		return buf
	}
	got, err := o.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		t.Fatalf("read: %v", err)
	}
	if int64(got) != n {
		t.Fatalf("read %d of %d bytes", got, n)
	}
	return buf
}

// TestSizeMapping checks PhysicalSize/LogicalSize are inverse over a
// range of sizes and block sizes.
func TestSizeMapping(t *testing.T) {
	for _, bs := range []int64{1, 7, 64, DefaultBlockSize} {
		for n := int64(0); n < 4*bs+3; n++ {
			p := PhysicalSize(n, bs)
			if got := LogicalSize(p, bs); got != n {
				t.Fatalf("bs=%d n=%d phys=%d logical=%d", bs, n, p, got)
			}
		}
	}
	// Damaged trailers clamp down, never panic or over-report.
	if got := LogicalSize(HeaderSize-3, 64); got != 0 {
		t.Fatalf("clamped logical = %d, want 0", got)
	}
	if got := LogicalSize((HeaderSize+64)+HeaderSize, 64); got != 64 {
		t.Fatalf("clamped logical = %d, want 64", got)
	}
}

// TestHeaderRoundTrip checks Marshal/Unmarshal are inverse and that an
// all-zero header decodes as a hole.
func TestHeaderRoundTrip(t *testing.T) {
	h := BlockHeader{Version: Version, Flags: 0, Length: 1234, Index: 56, Sum: 0xdeadbeef}
	enc := MarshalHeader(h)
	if len(enc) != HeaderSize {
		t.Fatalf("encoded %d bytes", len(enc))
	}
	got, hole, err := UnmarshalHeader(enc)
	if err != nil || hole {
		t.Fatalf("unmarshal: hole=%v err=%v", hole, err)
	}
	if got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
	if _, hole, err := UnmarshalHeader(make([]byte, HeaderSize)); err != nil || !hole {
		t.Fatalf("zero header: hole=%v err=%v", hole, err)
	}
	if _, _, err := UnmarshalHeader([]byte{1, 2, 3}); err == nil {
		t.Fatal("short header accepted")
	}
	bad := MarshalHeader(h)
	bad[0] ^= 0xff
	if _, _, err := UnmarshalHeader(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestRandomOpsModel drives the envelope over an in-memory inner store
// with random writes, reads, and truncates, comparing against a plain
// byte-slice model.
func TestRandomOpsModel(t *testing.T) {
	for _, bs := range []int64{16, 100, 4096} {
		t.Run(fmt.Sprintf("bs=%d", bs), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			s := NewStore(store.NewMem(), bs)
			o := openObj(t, s, "obj")
			var model []byte
			for op := 0; op < 400; op++ {
				switch rng.Intn(4) {
				case 0, 1: // write
					off := int64(rng.Intn(int(5 * bs)))
					n := rng.Intn(int(3*bs)) + 1
					p := make([]byte, n)
					rng.Read(p)
					if _, err := o.WriteAt(p, off); err != nil {
						t.Fatalf("op %d write: %v", op, err)
					}
					if end := off + int64(n); end > int64(len(model)) {
						model = append(model, make([]byte, end-int64(len(model)))...)
					}
					copy(model[off:], p)
				case 2: // read
					off := int64(rng.Intn(int(6 * bs)))
					n := rng.Intn(int(3*bs)) + 1
					p := make([]byte, n)
					got, err := o.ReadAt(p, off)
					wantN := int64(len(model)) - off
					if wantN < 0 {
						wantN = 0
					}
					if wantN > int64(n) {
						wantN = int64(n)
					}
					if int64(got) != wantN {
						t.Fatalf("op %d read at %d: n=%d want %d (err %v)", op, off, got, wantN, err)
					}
					if wantN < int64(n) && err != io.EOF {
						t.Fatalf("op %d short read err = %v, want EOF", op, err)
					}
					if !bytes.Equal(p[:got], model[off:off+wantN]) {
						t.Fatalf("op %d read mismatch at %d", op, off)
					}
				case 3: // truncate
					size := int64(rng.Intn(int(5 * bs)))
					if err := o.Truncate(size); err != nil {
						t.Fatalf("op %d truncate %d: %v", op, size, err)
					}
					if size <= int64(len(model)) {
						model = model[:size]
					} else {
						model = append(model, make([]byte, size-int64(len(model)))...)
					}
				}
				sz, err := o.Size()
				if err != nil || sz != int64(len(model)) {
					t.Fatalf("op %d size = %d (%v), want %d", op, sz, err, len(model))
				}
			}
			if !bytes.Equal(readAll(t, o), model) {
				t.Fatal("final content mismatch")
			}
			if s.Corruptions() != 0 {
				t.Fatalf("clean run counted %d corruptions", s.Corruptions())
			}
		})
	}
}

// TestFileStoreBacking runs a round trip over a directory-backed inner
// store, including reopen with a fresh wrapper.
func TestFileStoreBacking(t *testing.T) {
	inner, err := store.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(inner, 512)
	o := openObj(t, s, "a/b")
	data := make([]byte, 3000)
	rand.New(rand.NewSource(7)).Read(data)
	if _, err := o.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if sz, err := s.Stat("a/b"); err != nil || sz != 3000 {
		t.Fatalf("stat = %d, %v", sz, err)
	}
	names, err := s.List()
	if err != nil || len(names) != 1 || names[0] != "a/b" {
		t.Fatalf("list = %v, %v", names, err)
	}
	o2 := openObj(t, s, "a/b")
	if !bytes.Equal(readAll(t, o2), data) {
		t.Fatal("reopen content mismatch")
	}
	if err := s.Remove("a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stat("a/b"); !errors.Is(err, store.ErrNotExist) {
		t.Fatalf("stat after remove: %v", err)
	}
}

// corruptSetup writes a 4-block object and returns the store, wrapper
// object, inner raw object, and the content.
func corruptSetup(t *testing.T, bs int64) (*Store, store.Object, store.Object, []byte) {
	t.Helper()
	inner := store.NewMem()
	s := NewStore(inner, bs)
	o := openObj(t, s, "obj")
	data := make([]byte, 3*bs+bs/2)
	rand.New(rand.NewSource(3)).Read(data)
	if _, err := o.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	raw, err := inner.Open("obj", false)
	if err != nil {
		t.Fatal(err)
	}
	return s, o, raw, data
}

// TestDetectsDataFlip flips one payload byte and checks the read fails
// with a typed CorruptError naming the right block range.
func TestDetectsDataFlip(t *testing.T) {
	const bs = 256
	s, o, raw, data := corruptSetup(t, bs)
	// Flip a byte in block 2's payload.
	flipAt := int64(2)*(HeaderSize+bs) + HeaderSize + 17
	flipRaw(t, raw, flipAt)
	buf := make([]byte, len(data))
	_, err := o.ReadAt(buf, 0)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("read err = %v, want CorruptError", err)
	}
	if !errors.Is(err, ErrCorrupt) || !IsCorrupt(err) {
		t.Fatalf("err %v does not match ErrCorrupt", err)
	}
	if ce.Offset != 2*bs || ce.Length != bs {
		t.Fatalf("corrupt range [%d,+%d), want [%d,+%d)", ce.Offset, ce.Length, 2*bs, bs)
	}
	// Reads that avoid the bad block still succeed.
	ok := make([]byte, bs)
	if _, err := o.ReadAt(ok, 0); err != nil {
		t.Fatalf("read clean block: %v", err)
	}
	if !bytes.Equal(ok, data[:bs]) {
		t.Fatal("clean block content mismatch")
	}
	if s.Corruptions() == 0 {
		t.Fatal("corruption not counted")
	}
}

func flipRaw(t *testing.T, raw store.Object, off int64) {
	t.Helper()
	b := make([]byte, 1)
	if _, err := raw.ReadAt(b, off); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := raw.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}

// TestDetectsHeaderDamage damages header fields and checks detection.
func TestDetectsHeaderDamage(t *testing.T) {
	const bs = 256
	for _, hdrOff := range []int64{0 /* magic */, 2 /* version */, 5 /* length */, 9 /* index */, 13 /* sum */} {
		_, o, raw, _ := corruptSetup(t, bs)
		flipRaw(t, raw, int64(1)*(HeaderSize+bs)+hdrOff)
		buf := make([]byte, 2*bs)
		if _, err := o.ReadAt(buf, bs); !IsCorrupt(err) {
			t.Fatalf("hdr byte %d: read err = %v, want corrupt", hdrOff, err)
		}
	}
}

// TestDetectsTruncation cuts the inner fragment and checks the tail
// rule catches it.
func TestDetectsTruncation(t *testing.T) {
	const bs = 256
	_, o, raw, data := corruptSetup(t, bs)
	phys := PhysicalSize(int64(len(data)), bs)
	if err := raw.Truncate(phys - 10); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := o.ReadAt(buf, 0); !IsCorrupt(err) {
		t.Fatalf("read after truncation: %v, want corrupt", err)
	}
}

// TestFullBlockOverwriteRepairs checks that a whole-block write
// replaces a corrupt block without tripping on it (the repair path),
// while a partial write over the corrupt block fails.
func TestFullBlockOverwriteRepairs(t *testing.T) {
	const bs = 256
	_, o, raw, data := corruptSetup(t, bs)
	flipRaw(t, raw, int64(1)*(HeaderSize+bs)+HeaderSize+5)

	// Partial write into the corrupt block must refuse.
	if _, err := o.WriteAt([]byte{1, 2, 3}, bs+10); !IsCorrupt(err) {
		t.Fatalf("partial write over corrupt block: %v, want corrupt", err)
	}
	// Full-block overwrite succeeds and heals.
	fresh := make([]byte, bs)
	rand.New(rand.NewSource(9)).Read(fresh)
	if _, err := o.WriteAt(fresh, bs); err != nil {
		t.Fatalf("full overwrite: %v", err)
	}
	copy(data[bs:], fresh)
	if !bytes.Equal(readAll(t, o), data) {
		t.Fatal("content after repair mismatch")
	}
}

// TestHoleSemantics seeks past EOF and checks holes read as zeros and
// that non-zero bytes under a hole header are corruption.
func TestHoleSemantics(t *testing.T) {
	const bs = 128
	inner := store.NewMem()
	s := NewStore(inner, bs)
	o := openObj(t, s, "obj")
	// Sparse write: blocks 0..2 are holes.
	payload := []byte("tail")
	if _, err := o.WriteAt(payload, 3*bs); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 3*bs+int64(len(payload)))
	copy(want[3*bs:], payload)
	if !bytes.Equal(readAll(t, o), want) {
		t.Fatal("sparse content mismatch")
	}
	// Poison a hole's data region: read must fail.
	raw, err := inner.Open("obj", false)
	if err != nil {
		t.Fatal(err)
	}
	flipRaw(t, raw, int64(1)*(HeaderSize+bs)+HeaderSize+3)
	buf := make([]byte, bs)
	if _, err := o.ReadAt(buf, bs); !IsCorrupt(err) {
		t.Fatalf("read poisoned hole: %v, want corrupt", err)
	}
}

// TestParseCorrupt checks the wire round trip: a CorruptError message
// wrapped the way agents forward errors is still recoverable.
func TestParseCorrupt(t *testing.T) {
	orig := &CorruptError{Offset: 8192, Length: 4096, Detail: "checksum mismatch: stored 0x1, computed 0x2"}
	remote := fmt.Errorf("agent: %s", orig.Error())
	if !IsCorrupt(remote) {
		t.Fatalf("remote form not recognized: %v", remote)
	}
	got, ok := ParseCorrupt(remote.Error())
	if !ok {
		t.Fatal("ParseCorrupt failed")
	}
	if got.Offset != orig.Offset || got.Length != orig.Length || got.Detail != orig.Detail {
		t.Fatalf("parsed %+v, want %+v", got, orig)
	}
	for _, bad := range []string{"", "agent: timeout", "integrity: corrupt range [x,+1): d", "integrity: corrupt range [1,2): d"} {
		if _, ok := ParseCorrupt(bad); ok {
			t.Fatalf("ParseCorrupt accepted %q", bad)
		}
	}
}

// TestStatLogical checks Store.Stat reports logical sizes for both
// fresh and enveloped objects.
func TestStatLogical(t *testing.T) {
	s := NewStore(store.NewMem(), 512)
	o := openObj(t, s, "x")
	if _, err := o.WriteAt(make([]byte, 1300), 0); err != nil {
		t.Fatal(err)
	}
	if sz, err := s.Stat("x"); err != nil || sz != 1300 {
		t.Fatalf("stat = %d, %v; want 1300", sz, err)
	}
	if sz, err := o.Size(); err != nil || sz != 1300 {
		t.Fatalf("size = %d, %v; want 1300", sz, err)
	}
}
