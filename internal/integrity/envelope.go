// Package integrity provides the at-rest data-integrity envelope for
// store objects: every fragment is stored as a sequence of fixed-size
// blocks, each prefixed with a small versioned header carrying a CRC32C
// of the block's payload. Writes checksum, reads verify, and any
// mismatch surfaces as a typed *CorruptError instead of being served
// back as data.
//
// The envelope is deliberately simple — the paper's position is that
// striping across many agents must be paired with redundancy "as in
// RAID"; the parity path reconstructs lost fragments, and this package
// supplies the missing detection half: without checksums a bit-flip at
// rest is indistinguishable from correct data and silently defeats the
// redundancy.
//
// # On-store layout
//
// A fragment with logical size L and block size B is stored as
// ceil(L/B) blocks. Block b occupies the physical range
// [b*(HeaderSize+B), ...): a 16-byte header followed by up to B data
// bytes. Every block except the last occupies the full stride; the
// tail block is cut at its valid length, so the physical size maps
// bijectively to the logical size (see PhysicalSize / LogicalSize).
//
// Header layout (big endian):
//
//	magic   uint16  0x5342 "SB"
//	version uint8   1
//	flags   uint8   reserved, 0
//	length  uint32  valid data bytes in this block (<= block size)
//	index   uint32  block index, catches misplaced writes
//	sum     uint32  CRC32C over data[:length]
//
// An all-zero header marks a hole: a block that was never written
// (sparse files arise from seeks past EOF) and reads as zeros. Holes
// cost nothing to create — the underlying store zero-fills gaps — and
// any non-zero byte under a hole header is corruption by definition.
package integrity

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

const (
	// BlockMagic marks every written block header ("SB").
	BlockMagic = 0x5342
	// Version is the envelope version written by this package.
	Version = 1
	// HeaderSize is the encoded size of a BlockHeader.
	HeaderSize = 16
	// DefaultBlockSize is the checksum granularity when none is given.
	DefaultBlockSize = 4096
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the CRC32C (Castagnoli) checksum the envelope uses.
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// BlockHeader is the decoded per-block header.
type BlockHeader struct {
	Version uint8
	Flags   uint8
	Length  uint32 // valid data bytes in the block
	Index   uint32 // block index within the fragment
	Sum     uint32 // CRC32C over data[:Length]
}

// MarshalHeader encodes h into a fresh HeaderSize-byte slice.
func MarshalHeader(h BlockHeader) []byte {
	b := make([]byte, HeaderSize)
	binary.BigEndian.PutUint16(b[0:2], BlockMagic)
	b[2] = h.Version
	b[3] = h.Flags
	binary.BigEndian.PutUint32(b[4:8], h.Length)
	binary.BigEndian.PutUint32(b[8:12], h.Index)
	binary.BigEndian.PutUint32(b[12:16], h.Sum)
	return b
}

// UnmarshalHeader decodes a block header. hole reports an all-zero
// header, which marks a never-written (sparse) block that reads as
// zeros. The decoder is fuzz-safe: arbitrary input never panics.
func UnmarshalHeader(b []byte) (h BlockHeader, hole bool, err error) {
	if len(b) < HeaderSize {
		return h, false, fmt.Errorf("integrity: short header: %d bytes", len(b))
	}
	b = b[:HeaderSize]
	allZero := true
	for _, c := range b {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return h, true, nil
	}
	if m := binary.BigEndian.Uint16(b[0:2]); m != BlockMagic {
		return h, false, fmt.Errorf("integrity: bad block magic %#04x", m)
	}
	if b[2] != Version {
		return h, false, fmt.Errorf("integrity: unsupported block version %d", b[2])
	}
	h.Version = b[2]
	h.Flags = b[3]
	h.Length = binary.BigEndian.Uint32(b[4:8])
	h.Index = binary.BigEndian.Uint32(b[8:12])
	h.Sum = binary.BigEndian.Uint32(b[12:16])
	return h, false, nil
}

// PhysicalSize returns the on-store (envelope) size of a fragment whose
// logical size is n, for the given block size.
func PhysicalSize(n, blockSize int64) int64 {
	if n <= 0 {
		return 0
	}
	stride := HeaderSize + blockSize
	nb := (n + blockSize - 1) / blockSize
	tail := n - (nb-1)*blockSize
	return (nb-1)*stride + HeaderSize + tail
}

// LogicalSize inverts PhysicalSize: the logical fragment size implied
// by an on-store size. A physical size that cuts a header short (which
// only external damage can produce) is clamped down to the last whole
// block.
func LogicalSize(phys, blockSize int64) int64 {
	if phys <= 0 {
		return 0
	}
	stride := HeaderSize + blockSize
	full := phys / stride
	rem := phys % stride
	if rem <= HeaderSize {
		// rem == 0: the tail block exactly fills its stride.
		// 0 < rem <= HeaderSize: a truncated trailing header;
		// clamp to the blocks that are whole.
		return full * blockSize
	}
	return full*blockSize + (rem - HeaderSize)
}

// ErrCorrupt is the sentinel all corruption errors match with
// errors.Is.
var ErrCorrupt = errors.New("integrity: corrupt data")

// corruptMarker is the canonical prefix of a CorruptError message. It
// survives the trip through the wire protocol's string-carrying TError
// payload, so clients can recover the typed error with ParseCorrupt.
const corruptMarker = "integrity: corrupt range ["

// CorruptError reports a verification failure over a logical byte range
// of one fragment. Offset/Length are fragment-local logical
// coordinates, rounded out to the enclosing envelope blocks.
type CorruptError struct {
	Offset int64
	Length int64
	Detail string
}

// Error renders the canonical, machine-recoverable form (see
// ParseCorrupt).
func (e *CorruptError) Error() string {
	return fmt.Sprintf("%s%d,+%d): %s", corruptMarker, e.Offset, e.Length, e.Detail)
}

// Is makes errors.Is(err, ErrCorrupt) true for CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// IsCorrupt reports whether err indicates at-rest corruption — either
// directly (a *CorruptError anywhere in the chain) or as a remote error
// string forwarded by a storage agent over the wire.
func IsCorrupt(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrCorrupt) {
		return true
	}
	_, ok := ParseCorrupt(err.Error())
	return ok
}

// ParseCorrupt recovers a CorruptError embedded in an error message
// (typically a wire.RemoteError carrying an agent-side corruption
// report). It returns false when msg does not contain the canonical
// corrupt-range form.
func ParseCorrupt(msg string) (*CorruptError, bool) {
	i := strings.Index(msg, corruptMarker)
	if i < 0 {
		return nil, false
	}
	rest := msg[i+len(corruptMarker):]
	j := strings.IndexByte(rest, ',')
	if j < 0 {
		return nil, false
	}
	off, err := strconv.ParseInt(rest[:j], 10, 64)
	if err != nil || off < 0 {
		return nil, false
	}
	rest = rest[j+1:]
	if !strings.HasPrefix(rest, "+") {
		return nil, false
	}
	rest = rest[1:]
	k := strings.IndexByte(rest, ')')
	if k < 0 {
		return nil, false
	}
	n, err := strconv.ParseInt(rest[:k], 10, 64)
	if err != nil || n < 0 {
		return nil, false
	}
	detail := strings.TrimPrefix(rest[k+1:], ":")
	detail = strings.TrimPrefix(detail, " ")
	return &CorruptError{Offset: off, Length: n, Detail: detail}, true //lint:allow hotalloc corruption reports are the cold path
}
