package integrity

import (
	"bytes"
	"io"
	"testing"

	"swift/internal/store"
)

// FuzzIntegrityEnvelope hammers the block-envelope decoder with
// arbitrary bytes, two ways. First the header decoder directly: it must
// never panic, and any header it accepts must re-marshal byte-for-byte.
// Then a whole fragment image: the fuzz input is installed as the raw
// on-store bytes of an enveloped object and fully read back — the
// wrapper must never panic and never serve unverified data (every byte
// it returns must be covered by a checksum that matched or by a hole
// that proved all-zero).
func FuzzIntegrityEnvelope(f *testing.F) {
	// Seeds: a valid header, a hole, junk, and a few well-formed
	// fragment images (which the mutator will then damage).
	f.Add(MarshalHeader(BlockHeader{Version: Version, Length: 64, Index: 0, Sum: Checksum(bytes.Repeat([]byte{7}, 64))}))
	f.Add(make([]byte, HeaderSize))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x53, 0x42}, 24))
	for _, n := range []int{1, 64, 65, 129} {
		inner := store.NewMem()
		s := NewStore(inner, 64)
		o, _ := s.Open("seed", true)
		p := bytes.Repeat([]byte{0xA5}, n)
		o.WriteAt(p, 0)
		raw, _ := inner.Open("seed", false)
		sz, _ := raw.Size()
		img := make([]byte, sz)
		raw.ReadAt(img, 0)
		f.Add(img)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. Header decode: no panic; accepted headers round trip.
		if h, hole, err := UnmarshalHeader(data); err == nil && !hole {
			out := MarshalHeader(h)
			if !bytes.Equal(out, data[:HeaderSize]) {
				t.Fatalf("header roundtrip mismatch:\n in: %x\nout: %x", data[:HeaderSize], out)
			}
		}

		// 2. Whole-fragment decode: install data as the raw bytes of
		// an enveloped object and read everything back.
		const bs = 64
		inner := store.NewMem()
		raw, err := inner.Open("obj", true)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 0 {
			if _, err := raw.WriteAt(data, 0); err != nil {
				t.Fatal(err)
			}
		}
		s := NewStore(inner, bs)
		o, err := s.Open("obj", false)
		if err != nil {
			t.Fatal(err)
		}
		logical, err := o.Size()
		if err != nil {
			t.Fatalf("size: %v", err)
		}
		if want := LogicalSize(int64(len(data)), bs); logical != want {
			t.Fatalf("logical size %d, want %d", logical, want)
		}
		buf := make([]byte, logical+bs)
		n, err := o.ReadAt(buf, 0)
		if err != nil && err != io.EOF && !IsCorrupt(err) {
			t.Fatalf("read: unexpected error class %v", err)
		}
		if int64(n) > logical {
			t.Fatalf("read returned %d bytes past logical size %d", n, logical)
		}
		// Every returned byte must verify: re-check each fully
		// returned block against the raw image.
		stride := int64(HeaderSize + bs)
		for b := int64(0); b*bs < int64(n); b++ {
			lo, hi := b*bs, (b+1)*bs
			if hi > int64(n) {
				break // partially returned block: not vouched for
			}
			start := b * stride
			end := start + stride
			if end > int64(len(data)) {
				end = int64(len(data))
			}
			blk := data[start:end]
			hdr, hole, err := UnmarshalHeader(blk)
			if err != nil {
				t.Fatalf("served block %d with undecodable header", b)
			}
			want := make([]byte, bs)
			if hole {
				for _, c := range blk[min(HeaderSize, len(blk)):] {
					if c != 0 {
						t.Fatalf("served poisoned hole block %d", b)
					}
				}
			} else {
				payload := blk[HeaderSize:]
				if int64(hdr.Length) > int64(len(payload)) || Checksum(payload[:hdr.Length]) != hdr.Sum {
					t.Fatalf("served block %d whose checksum does not verify", b)
				}
				copy(want, payload[:hdr.Length])
			}
			if !bytes.Equal(buf[lo:hi], want) {
				t.Fatalf("served block %d bytes differ from verified content", b)
			}
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
