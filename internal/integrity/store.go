package integrity

import (
	"sync/atomic"

	"swift/internal/store"
)

// Store wraps an inner object store so every object it opens carries
// the block-checksum envelope. Stat and Size report logical sizes, so
// the wrapped store is a drop-in replacement for the raw one; only the
// on-store representation changes.
type Store struct {
	inner   store.Store
	bs      int64
	corrupt atomic.Int64
}

// NewStore wraps inner at the given block size (DefaultBlockSize when
// <= 0). The block size must stay constant for the lifetime of the
// backing data: reading an envelope written at a different block size
// reports corruption.
func NewStore(inner store.Store, blockSize int64) *Store {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &Store{inner: inner, bs: blockSize}
}

// BlockSize returns the envelope's checksum granularity.
func (s *Store) BlockSize() int64 { return s.bs }

// Inner returns the wrapped store, giving tests and fault injectors
// access to the raw (enveloped) bytes.
func (s *Store) Inner() store.Store { return s.inner }

// Corruptions returns the number of verification failures detected so
// far across all objects opened from this store.
func (s *Store) Corruptions() int64 { return s.corrupt.Load() }

// Open implements store.Store.
func (s *Store) Open(name string, create bool) (store.Object, error) {
	obj, err := s.inner.Open(name, create)
	if err != nil {
		return nil, err
	}
	return newObject(obj, s.bs, &s.corrupt), nil
}

// Stat implements store.Store, reporting the logical size.
func (s *Store) Stat(name string) (int64, error) {
	phys, err := s.inner.Stat(name)
	if err != nil {
		return 0, err
	}
	return LogicalSize(phys, s.bs), nil
}

// Remove implements store.Store.
func (s *Store) Remove(name string) error { return s.inner.Remove(name) }

// List implements store.Store.
func (s *Store) List() ([]string, error) { return s.inner.List() }
