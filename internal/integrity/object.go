package integrity

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"swift/internal/store"
)

// Object wraps a store.Object with the block-checksum envelope: WriteAt
// checksums, ReadAt verifies, and verification failures surface as
// *CorruptError. It implements store.Object with logical (unveloped)
// offsets and sizes, so it is a drop-in replacement for the raw object.
type Object struct {
	inner   store.Object
	bs      int64 // block size
	stride  int64 // HeaderSize + bs
	mu      sync.RWMutex
	corrupt *atomic.Int64 // shared with the owning Store; may be nil
}

// NewObject wraps inner with the envelope at the given block size
// (DefaultBlockSize when <= 0).
func NewObject(inner store.Object, blockSize int64) *Object {
	return newObject(inner, blockSize, nil)
}

func newObject(inner store.Object, blockSize int64, corrupt *atomic.Int64) *Object {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &Object{
		inner:   inner,
		bs:      blockSize,
		stride:  HeaderSize + blockSize,
		corrupt: corrupt,
	}
}

// BlockSize returns the envelope's checksum granularity.
func (o *Object) BlockSize() int64 { return o.bs }

func (o *Object) corruptErr(b, logical int64, detail string) error {
	if o.corrupt != nil {
		o.corrupt.Add(1)
	}
	off := b * o.bs
	n := logical - off
	if n > o.bs {
		n = o.bs
	}
	if n < 0 {
		n = 0
	}
	return &CorruptError{Offset: off, Length: n, Detail: detail}
}

// blockBuf is one decoded block: its header (zero for holes) and the
// raw data-region bytes as stored.
type blockBuf struct {
	hole bool
	hdr  BlockHeader
	data []byte
}

// valid returns the number of checksummed bytes the block holds.
func (bb blockBuf) valid() int64 {
	if bb.hole {
		return 0
	}
	return int64(bb.hdr.Length)
}

// loadBlock reads and verifies block b. logical and phys are the
// object's current logical and physical sizes.
func (o *Object) loadBlock(b, logical, phys int64) (blockBuf, error) {
	start := b * o.stride
	end := start + o.stride
	if end > phys {
		end = phys
	}
	if end <= start {
		return blockBuf{hole: true}, nil
	}
	raw := make([]byte, end-start)
	n, err := o.inner.ReadAt(raw, start)
	if n < len(raw) {
		if err == nil || err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return blockBuf{}, fmt.Errorf("integrity: read block %d: %w", b, err)
	}
	if len(raw) < HeaderSize {
		return blockBuf{}, o.corruptErr(b, logical, "truncated block header")
	}
	hdr, hole, err := UnmarshalHeader(raw)
	if err != nil {
		return blockBuf{}, o.corruptErr(b, logical, err.Error())
	}
	data := raw[HeaderSize:]
	if hole {
		for _, c := range data {
			if c != 0 {
				return blockBuf{}, o.corruptErr(b, logical, "data under hole header")
			}
		}
		return blockBuf{hole: true, data: data}, nil
	}
	if int64(hdr.Length) > o.bs {
		return blockBuf{}, o.corruptErr(b, logical,
			fmt.Sprintf("block length %d exceeds block size %d", hdr.Length, o.bs))
	}
	if int64(hdr.Length) > int64(len(data)) {
		return blockBuf{}, o.corruptErr(b, logical,
			fmt.Sprintf("block length %d beyond stored bytes %d", hdr.Length, len(data)))
	}
	if int64(hdr.Index) != b {
		return blockBuf{}, o.corruptErr(b, logical,
			fmt.Sprintf("block index %d, want %d", hdr.Index, b))
	}
	if sum := Checksum(data[:hdr.Length]); sum != hdr.Sum {
		return blockBuf{}, o.corruptErr(b, logical,
			fmt.Sprintf("checksum mismatch: stored %#08x, computed %#08x", hdr.Sum, sum))
	}
	// The tail block's stored length is pinned to the physical size;
	// a mismatch means the fragment was truncated or extended behind
	// the envelope's back.
	if nb := (logical + o.bs - 1) / o.bs; b == nb-1 {
		if tail := logical - (nb-1)*o.bs; int64(hdr.Length) != tail {
			return blockBuf{}, o.corruptErr(b, logical,
				fmt.Sprintf("tail block length %d, want %d", hdr.Length, tail))
		}
	}
	return blockBuf{hdr: hdr, data: data}, nil
}

// copyBlock fills dst with block content starting at block-local offset
// lo: checksummed bytes first, zeros beyond the stored length (sparse
// blocks read as zeros).
func copyBlock(dst []byte, blk blockBuf, lo int64) {
	var n int
	if v := blk.valid(); lo < v {
		n = copy(dst, blk.data[lo:v])
	}
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
}

// storeBlock writes block b: header plus data, checksummed. len(data)
// becomes the block's valid length.
func (o *Object) storeBlock(b int64, data []byte) error {
	out := make([]byte, HeaderSize+len(data))
	h := BlockHeader{
		Version: Version,
		Length:  uint32(len(data)),
		Index:   uint32(b),
		Sum:     Checksum(data),
	}
	copy(out, MarshalHeader(h))
	copy(out[HeaderSize:], data)
	_, err := o.inner.WriteAt(out, b*o.stride)
	return err
}

// ReadAt implements io.ReaderAt over logical offsets, verifying every
// touched block. Like the raw stores it returns (n, io.EOF) when the
// read extends past the logical size.
func (o *Object) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("integrity: negative offset")
	}
	if len(p) == 0 {
		return 0, nil
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	phys, err := o.inner.Size()
	if err != nil {
		return 0, err
	}
	logical := LogicalSize(phys, o.bs)
	if off >= logical {
		return 0, io.EOF
	}
	want := int64(len(p))
	if off+want > logical {
		want = logical - off
	}
	var done int64
	for done < want {
		at := off + done
		b := at / o.bs
		lo := at - b*o.bs
		n := o.bs - lo
		if n > want-done {
			n = want - done
		}
		blk, err := o.loadBlock(b, logical, phys)
		if err != nil {
			return int(done), err
		}
		copyBlock(p[done:done+n], blk, lo)
		done += n
	}
	if done < int64(len(p)) {
		return int(done), io.EOF
	}
	return int(done), nil
}

// WriteAt implements io.WriterAt over logical offsets. Whole-block
// overwrites skip the merge read entirely, so rewriting a corrupt block
// in full (the repair path) always succeeds; a partial write over a
// corrupt block fails with *CorruptError because the merge would have
// to trust poisoned bytes.
func (o *Object) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("integrity: negative offset")
	}
	if len(p) == 0 {
		return 0, nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	phys, err := o.inner.Size()
	if err != nil {
		return 0, err
	}
	logical := LogicalSize(phys, o.bs)
	total := int64(len(p))
	var done int64
	for done < total {
		at := off + done
		b := at / o.bs
		lo := at - b*o.bs
		n := o.bs - lo
		if n > total-done {
			n = total - done
		}
		hi := lo + n
		existLen := logical - b*o.bs
		if existLen < 0 {
			existLen = 0
		}
		if existLen > o.bs {
			existLen = o.bs
		}
		var buf []byte
		if lo == 0 && hi >= existLen {
			// Full cover: the write replaces every previously
			// valid byte of the block; no merge read needed.
			buf = p[done : done+n]
		} else {
			blk, err := o.loadBlock(b, logical, phys)
			if err != nil {
				return int(done), err
			}
			newLen := hi
			if existLen > newLen {
				newLen = existLen
			}
			buf = make([]byte, newLen)
			copyBlock(buf, blk, 0)
			copy(buf[lo:hi], p[done:done+n])
		}
		if err := o.storeBlock(b, buf); err != nil {
			return int(done), err
		}
		done += n
	}
	return int(done), nil
}

// Size returns the logical size.
func (o *Object) Size() (int64, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	phys, err := o.inner.Size()
	if err != nil {
		return 0, err
	}
	return LogicalSize(phys, o.bs), nil
}

// Truncate sets the logical size, rewriting the (new) tail block's
// header so its stored length stays pinned to the physical size.
func (o *Object) Truncate(size int64) error {
	if size < 0 {
		return errors.New("integrity: negative size")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	phys, err := o.inner.Size()
	if err != nil {
		return err
	}
	logical := LogicalSize(phys, o.bs)
	if size == logical {
		return nil
	}
	if size == 0 {
		return o.inner.Truncate(0)
	}
	nb := (size + o.bs - 1) / o.bs
	tb := nb - 1
	tailLen := size - tb*o.bs
	blk, err := o.loadBlock(tb, logical, phys)
	if err != nil {
		return err
	}
	if !blk.hole && int64(blk.hdr.Length) != tailLen {
		buf := make([]byte, tailLen)
		copyBlock(buf, blk, 0)
		if err := o.storeBlock(tb, buf); err != nil {
			return err
		}
	}
	return o.inner.Truncate(PhysicalSize(size, o.bs))
}

// Sync flushes the inner object.
func (o *Object) Sync() error { return o.inner.Sync() }

// Close closes the inner object.
func (o *Object) Close() error { return o.inner.Close() }
