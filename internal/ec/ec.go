package ec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"swift/internal/parity"
)

// Shard order convention: a stripe row is a slice of m+k shards, data
// first (indices 0..m-1) then parity (indices m..m+k-1). In Reconstruct
// a nil shard marks a missing unit; everywhere else all shards must be
// present. Shards may be shorter than the row's striping unit — short
// shards are treated as zero-padded, matching the engine's convention
// that tail data units end at the file while parity units always span
// the full unit.

var (
	// ErrShardCount reports a shards slice whose length is not m+k.
	ErrShardCount = errors.New("ec: wrong number of shards")
	// ErrTooFewShards reports a Reconstruct call with fewer than m
	// present shards: the row is beyond the code's correction power.
	ErrTooFewShards = errors.New("ec: too few shards to reconstruct")
)

// Codec encodes and reconstructs stripe rows for one (m data, k parity)
// scheme. Implementations are safe for concurrent use.
type Codec interface {
	// DataShards returns m, the number of data units per row.
	DataShards() int
	// ParityShards returns k, the number of parity units per row.
	ParityShards() int
	// Encode fills the k parity shards from the m data shards. All
	// m+k shards must be non-nil; parity shards define the row width.
	Encode(shards [][]byte) error
	// Reconstruct rebuilds every nil shard from the present ones.
	// At least m shards must be present. Rebuilt shards are allocated
	// to the widest present shard's length.
	Reconstruct(shards [][]byte) error
	// Verify reports whether the parity shards match the data shards.
	Verify(shards [][]byte) (bool, error)
	// Stats returns a snapshot of the codec's work counters.
	Stats() Stats
	// String returns the scheme as "m+k", e.g. "8+2".
	String() string
}

// Stats is a value snapshot of one codec's counters. All fields are
// monotonic since codec construction.
type Stats struct {
	EncodeCalls      int64
	EncodeBytes      int64 // data bytes consumed by Encode
	ReconstructCalls int64
	ReconstructBytes int64 // bytes of shards rebuilt
	InvCacheHits     int64 // decode-matrix inversions served from cache
	InvCacheMisses   int64 // decode-matrix inversions computed
	// ByMissing[n] counts Reconstruct calls that rebuilt exactly n
	// shards (index 0 unused; length k+1).
	ByMissing []int64
}

// Sub returns the counter deltas s - prev (ByMissing is differenced
// element-wise over the shorter of the two).
func (s Stats) Sub(prev Stats) Stats {
	d := Stats{
		EncodeCalls:      s.EncodeCalls - prev.EncodeCalls,
		EncodeBytes:      s.EncodeBytes - prev.EncodeBytes,
		ReconstructCalls: s.ReconstructCalls - prev.ReconstructCalls,
		ReconstructBytes: s.ReconstructBytes - prev.ReconstructBytes,
		InvCacheHits:     s.InvCacheHits - prev.InvCacheHits,
		InvCacheMisses:   s.InvCacheMisses - prev.InvCacheMisses,
		ByMissing:        append([]int64(nil), s.ByMissing...),
	}
	for i := range d.ByMissing {
		if i < len(prev.ByMissing) {
			d.ByMissing[i] -= prev.ByMissing[i]
		}
	}
	return d
}

// counters is the shared atomic instrument block.
type counters struct {
	encodeCalls      atomic.Int64
	encodeBytes      atomic.Int64
	reconstructCalls atomic.Int64
	reconstructBytes atomic.Int64
	invCacheHits     atomic.Int64
	invCacheMisses   atomic.Int64
	byMissing        []atomic.Int64 // length k+1
}

func newCounters(k int) *counters {
	return &counters{byMissing: make([]atomic.Int64, k+1)}
}

func (c *counters) snapshot() Stats {
	s := Stats{
		EncodeCalls:      c.encodeCalls.Load(),
		EncodeBytes:      c.encodeBytes.Load(),
		ReconstructCalls: c.reconstructCalls.Load(),
		ReconstructBytes: c.reconstructBytes.Load(),
		InvCacheHits:     c.invCacheHits.Load(),
		InvCacheMisses:   c.invCacheMisses.Load(),
		ByMissing:        make([]int64, len(c.byMissing)),
	}
	for i := range c.byMissing {
		s.ByMissing[i] = c.byMissing[i].Load()
	}
	return s
}

// New returns a Codec for m data and k parity shards. k=1 returns the
// XOR codec — the existing internal/parity path is exactly the
// degenerate single-parity Reed–Solomon code, and routing it through
// parity.Compute keeps the two paths byte-identical by construction
// (and proven by TestXORCompat). k>=2 returns the Reed–Solomon codec.
func New(m, k int) (Codec, error) {
	if err := validate(m, k); err != nil {
		return nil, err
	}
	if k == 1 {
		return &xorCodec{m: m, ctr: newCounters(1)}, nil
	}
	return newRS(m, k)
}

// NewRS returns the Reed–Solomon codec even for k=1, bypassing the XOR
// fast path. Only the compatibility tests need this: they prove that
// RS(m,1) produces byte-identical parity to internal/parity, which is
// what licenses New's k=1 delegation.
func NewRS(m, k int) (Codec, error) {
	if err := validate(m, k); err != nil {
		return nil, err
	}
	return newRS(m, k)
}

func validate(m, k int) error {
	if m < 1 || k < 1 {
		return fmt.Errorf("ec: need at least 1 data and 1 parity shard (have m=%d k=%d)", m, k)
	}
	if m+k > 256 {
		return fmt.Errorf("ec: m+k must be <= 256 over GF(2^8) (have %d)", m+k)
	}
	return nil
}

// checkShards validates the shard count and, when requireAll is set,
// that every shard is non-nil.
func checkShards(shards [][]byte, total int, requireAll bool) error {
	if len(shards) != total {
		return fmt.Errorf("%w: have %d want %d", ErrShardCount, len(shards), total) //lint:allow hotalloc shard-shape validation failure is a caller bug, cold
	}
	if requireAll {
		for i, s := range shards {
			if s == nil {
				return fmt.Errorf("ec: shard %d is nil", i) //lint:allow hotalloc shard-shape validation failure is a caller bug, cold
			}
		}
	}
	return nil
}

// rowWidth returns the widest present shard's length.
func rowWidth(shards [][]byte) int {
	w := 0
	for _, s := range shards {
		if len(s) > w {
			w = len(s)
		}
	}
	return w
}

// ---------------------------------------------------------------------
// Reed–Solomon codec (k >= 2, or k = 1 via NewRS for compat proofs).

type rsCodec struct {
	m, k int
	a    matrix // k×m parity sub-matrix of the systematic generator
	ctr  *counters

	mu  sync.RWMutex
	inv map[uint32]matrix // present-shard bitmask → m×m decode matrix
}

func newRS(m, k int) (*rsCodec, error) {
	return &rsCodec{
		m:   m,
		k:   k,
		a:   codingMatrix(m, k),
		ctr: newCounters(k),
		inv: make(map[uint32]matrix),
	}, nil
}

func (c *rsCodec) DataShards() int   { return c.m }
func (c *rsCodec) ParityShards() int { return c.k }
func (c *rsCodec) String() string    { return fmt.Sprintf("%d+%d", c.m, c.k) }
func (c *rsCodec) Stats() Stats      { return c.ctr.snapshot() }

// Encode fills the k parity shards from the m data shards in place:
// the per-row write-path kernel.
//
//swift:hotpath
func (c *rsCodec) Encode(shards [][]byte) error {
	if err := checkShards(shards, c.m+c.k, true); err != nil {
		return err
	}
	data := shards[:c.m]
	var nbytes int64
	for _, d := range data {
		nbytes += int64(len(d))
	}
	for p := 0; p < c.k; p++ {
		out := shards[c.m+p]
		clearSlice(out)
		arow := c.a.row(p)
		for d, coeff := range arow {
			mulAddSlice(coeff, data[d], out)
		}
	}
	c.ctr.encodeCalls.Add(1)
	c.ctr.encodeBytes.Add(nbytes)
	return nil
}

func (c *rsCodec) Verify(shards [][]byte) (bool, error) {
	if err := checkShards(shards, c.m+c.k, true); err != nil {
		return false, err
	}
	width := rowWidth(shards)
	want := make([]byte, width)
	for p := 0; p < c.k; p++ {
		clearSlice(want)
		arow := c.a.row(p)
		for d, coeff := range arow {
			mulAddSlice(coeff, shards[d], want)
		}
		have := shards[c.m+p]
		for i := range want {
			var hv byte
			if i < len(have) {
				hv = have[i]
			}
			if want[i] != hv {
				return false, nil
			}
		}
	}
	return true, nil
}

func (c *rsCodec) Reconstruct(shards [][]byte) error {
	total := c.m + c.k
	if err := checkShards(shards, total, false); err != nil {
		return err
	}
	var presentMask uint32
	present, missing := 0, 0
	for i, s := range shards {
		if s != nil {
			presentMask |= 1 << uint(i)
			present++
		} else {
			missing++
		}
	}
	if missing == 0 {
		return nil
	}
	if present < c.m {
		return fmt.Errorf("%w: %d present, need %d", ErrTooFewShards, present, c.m)
	}
	width := rowWidth(shards)

	// Choose the first m present shards as decode inputs and fetch the
	// cached inverse of the corresponding generator rows.
	dec, inputs := c.decodeMatrix(presentMask)

	// Rebuild missing data shards: data[j] = Σ_i dec[j][i] · input[i].
	var rebuilt int64
	for j := 0; j < c.m; j++ {
		if shards[j] != nil {
			continue
		}
		out := make([]byte, width)
		drow := dec.row(j)
		for i, idx := range inputs {
			mulAddSlice(drow[i], shards[idx], out)
		}
		shards[j] = out
		rebuilt += int64(width)
	}

	// Rebuild missing parity shards from the (now complete) data.
	for p := 0; p < c.k; p++ {
		if shards[c.m+p] != nil {
			continue
		}
		out := make([]byte, width)
		arow := c.a.row(p)
		for d, coeff := range arow {
			mulAddSlice(coeff, shards[d], out)
		}
		shards[c.m+p] = out
		rebuilt += int64(width)
	}

	c.ctr.reconstructCalls.Add(1)
	c.ctr.reconstructBytes.Add(rebuilt)
	if missing < len(c.ctr.byMissing) {
		c.ctr.byMissing[missing].Add(1)
	} else {
		c.ctr.byMissing[len(c.ctr.byMissing)-1].Add(1)
	}
	return nil
}

// decodeMatrix returns the m×m matrix that maps the first m present
// shards (in index order) back to the m data shards, plus the shard
// indices chosen as inputs. Inversions are cached by present-shard
// bitmask; repeated degraded reads against the same failure set hit
// the cache.
func (c *rsCodec) decodeMatrix(presentMask uint32) (matrix, []int) {
	inputs := make([]int, 0, c.m)
	for i := 0; i < c.m+c.k && len(inputs) < c.m; i++ {
		if presentMask&(1<<uint(i)) != 0 {
			inputs = append(inputs, i)
		}
	}
	var inputMask uint32
	for _, i := range inputs {
		inputMask |= 1 << uint(i)
	}

	c.mu.RLock()
	dec, ok := c.inv[inputMask]
	c.mu.RUnlock()
	if ok {
		c.ctr.invCacheHits.Add(1)
		return dec, inputs
	}
	c.ctr.invCacheMisses.Add(1)

	// Build the m×m submatrix of the systematic generator [I; A] whose
	// rows correspond to the chosen input shards, then invert it. The
	// normalized Cauchy construction guarantees invertibility for any
	// choice of m distinct rows.
	sub := newMatrix(c.m, c.m)
	for r, idx := range inputs {
		if idx < c.m {
			sub.set(r, idx, 1)
		} else {
			copy(sub.row(r), c.a.row(idx-c.m))
		}
	}
	inv, err := sub.invert()
	if err != nil {
		// Unreachable for a correctly constructed code; fail loudly.
		panic(fmt.Sprintf("ec: generator submatrix singular for mask %#x: %v", inputMask, err))
	}

	c.mu.Lock()
	c.inv[inputMask] = inv
	c.mu.Unlock()
	return inv, inputs
}

// ---------------------------------------------------------------------
// XOR codec: the degenerate k=1 case, delegating to internal/parity so
// the legacy single-parity path and the ec path are the same code.

type xorCodec struct {
	m   int
	ctr *counters
}

func (c *xorCodec) DataShards() int   { return c.m }
func (c *xorCodec) ParityShards() int { return 1 }
func (c *xorCodec) String() string    { return fmt.Sprintf("%d+1", c.m) }
func (c *xorCodec) Stats() Stats      { return c.ctr.snapshot() }

// Encode XORs the m data shards into the single parity shard in place.
//
//swift:hotpath
func (c *xorCodec) Encode(shards [][]byte) error {
	if err := checkShards(shards, c.m+1, true); err != nil {
		return err
	}
	var nbytes int64
	for _, d := range shards[:c.m] {
		nbytes += int64(len(d))
	}
	parity.Compute(shards[c.m], shards[:c.m])
	c.ctr.encodeCalls.Add(1)
	c.ctr.encodeBytes.Add(nbytes)
	return nil
}

func (c *xorCodec) Verify(shards [][]byte) (bool, error) {
	if err := checkShards(shards, c.m+1, true); err != nil {
		return false, err
	}
	return parity.Check(shards[c.m], shards[:c.m]) == nil, nil
}

func (c *xorCodec) Reconstruct(shards [][]byte) error {
	if err := checkShards(shards, c.m+1, false); err != nil {
		return err
	}
	missingIdx := -1
	for i, s := range shards {
		if s == nil {
			if missingIdx >= 0 {
				return fmt.Errorf("%w: 2+ missing, need %d present", ErrTooFewShards, c.m)
			}
			missingIdx = i
		}
	}
	if missingIdx < 0 {
		return nil
	}
	width := rowWidth(shards)
	out := make([]byte, width)
	surviving := make([][]byte, 0, c.m)
	for i, s := range shards {
		if i != missingIdx {
			surviving = append(surviving, s)
		}
	}
	parity.Reconstruct(out, surviving)
	shards[missingIdx] = out
	c.ctr.reconstructCalls.Add(1)
	c.ctr.reconstructBytes.Add(int64(width))
	c.ctr.byMissing[1].Add(1)
	return nil
}
