// Package ec implements Swift's general erasure coding: systematic
// Reed–Solomon codes over GF(2^8) with m data and k parity units per
// stripe row. It generalizes the single-XOR computed copy of
// internal/parity — the paper's "resiliency in the presence of a single
// failure (per group)" — to codes that tolerate any k simultaneous
// failures, which is what production-scale arrays standardize on once
// rebuild windows make double failures routine.
//
// The package is deliberately clock-free and allocation-light: all hot
// kernels operate on caller-provided byte slices using precomputed
// lookup tables, and the only synchronization is a read-mostly cache of
// decode-matrix inversions.
package ec

// GF(2^8) arithmetic with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11d), the conventional choice for storage Reed–Solomon codes.
//
// Three table families are precomputed at init:
//
//   - gfExp/gfLog: exponential and logarithm tables for scalar mul/div
//     and matrix algebra (code construction, inversion).
//   - gfMul: full 256×256 product table for scalar hot paths.
//   - mulTableLow/mulTableHigh: split low/high-nibble tables. For a
//     fixed coefficient c, any byte b satisfies
//     c·b = c·(b&0x0f) ⊕ c·(b&0xf0), so the byte-slice kernels do two
//     16-entry lookups and one XOR per byte from tables that fit in L1.

const gfPoly = 0x11d

var (
	gfExp [512]byte // gfExp[i] = α^i, doubled so mul can skip a mod
	gfLog [256]byte // gfLog[α^i] = i; gfLog[0] unused

	gfMul [256][256]byte // gfMul[a][b] = a·b

	mulTableLow  [256][16]byte // mulTableLow[c][n]  = c·n        (low nibble)
	mulTableHigh [256][16]byte // mulTableHigh[c][n] = c·(n<<4)   (high nibble)
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	for a := 1; a < 256; a++ {
		la := int(gfLog[a])
		for b := 1; b < 256; b++ {
			gfMul[a][b] = gfExp[la+int(gfLog[b])]
		}
	}
	for c := 0; c < 256; c++ {
		for n := 0; n < 16; n++ {
			mulTableLow[c][n] = gfMul[c][n]
			mulTableHigh[c][n] = gfMul[c][n<<4]
		}
	}
}

// gfMulByte returns the GF(2^8) product a·b.
func gfMulByte(a, b byte) byte { return gfMul[a][b] }

// gfDiv returns a/b. Division by zero panics: the code construction
// guarantees every divisor is a nonzero Cauchy element, so a zero here
// is a programming error, not an input condition.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("ec: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a.
func gfInv(a byte) byte { return gfDiv(1, a) }

// mulSlice sets out = c·in element-wise over the overlapping prefix.
// c==0 zeroes out; c==1 copies.
func mulSlice(c byte, in, out []byte) {
	n := len(in)
	if len(out) < n {
		n = len(out)
	}
	switch c {
	case 0:
		clearSlice(out[:n])
		return
	case 1:
		copy(out[:n], in[:n])
		return
	}
	low := &mulTableLow[c]
	high := &mulTableHigh[c]
	in = in[:n]
	out = out[:n] // bounds-check elimination: equal-length reslices
	for i := range in {
		b := in[i]
		out[i] = low[b&0x0f] ^ high[b>>4]
	}
}

// mulAddSlice xors c·in into out element-wise over the overlapping
// prefix. c==0 is a no-op; c==1 degenerates to plain XOR, which is the
// whole k=1 parity path.
func mulAddSlice(c byte, in, out []byte) {
	n := len(in)
	if len(out) < n {
		n = len(out)
	}
	switch c {
	case 0:
		return
	case 1:
		in = in[:n]
		out = out[:n]
		for i := range in {
			out[i] ^= in[i]
		}
		return
	}
	low := &mulTableLow[c]
	high := &mulTableHigh[c]
	in = in[:n]
	out = out[:n]
	for i := range in {
		b := in[i]
		out[i] ^= low[b&0x0f] ^ high[b>>4]
	}
}

// clearSlice zeroes b (the compiler recognizes this loop as memclr).
func clearSlice(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
