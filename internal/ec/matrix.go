package ec

import "fmt"

// matrix is a dense row-major GF(2^8) matrix.
type matrix struct {
	rows, cols int
	data       []byte // rows*cols, row-major
}

func newMatrix(rows, cols int) matrix {
	return matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

func (m matrix) at(r, c int) byte     { return m.data[r*m.cols+c] }
func (m matrix) set(r, c int, v byte) { m.data[r*m.cols+c] = v }
func (m matrix) row(r int) []byte     { return m.data[r*m.cols : (r+1)*m.cols] }
func (m matrix) swapRows(r1, r2 int) {
	if r1 == r2 {
		return
	}
	a, b := m.row(r1), m.row(r2)
	for i := range a {
		a[i], b[i] = b[i], a[i]
	}
}

// identity returns the n×n identity matrix.
func identity(n int) matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m.set(i, i, 1)
	}
	return m
}

// mul returns a·b.
func (m matrix) mul(b matrix) matrix {
	if m.cols != b.rows {
		panic("ec: matrix dimension mismatch")
	}
	out := newMatrix(m.rows, b.cols)
	for r := 0; r < m.rows; r++ {
		mrow := m.row(r)
		orow := out.row(r)
		for i, coeff := range mrow {
			if coeff == 0 {
				continue
			}
			brow := b.row(i)
			for c, bv := range brow {
				if bv != 0 {
					orow[c] ^= gfMul[coeff][bv]
				}
			}
		}
	}
	return out
}

// invert returns the inverse of the square matrix m via Gauss–Jordan
// elimination, or an error if m is singular. m is not modified.
func (m matrix) invert() (matrix, error) {
	if m.rows != m.cols {
		panic("ec: invert of non-square matrix")
	}
	n := m.rows
	work := newMatrix(n, n)
	copy(work.data, m.data)
	inv := identity(n)

	for col := 0; col < n; col++ {
		// Find a pivot at or below the diagonal.
		pivot := -1
		for r := col; r < n; r++ {
			if work.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return matrix{}, fmt.Errorf("ec: singular matrix (no pivot in column %d)", col)
		}
		work.swapRows(col, pivot)
		inv.swapRows(col, pivot)

		// Scale the pivot row so the diagonal element is 1.
		if d := work.at(col, col); d != 1 {
			di := gfInv(d)
			scaleRow(work.row(col), di)
			scaleRow(inv.row(col), di)
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.at(r, col)
			if f == 0 {
				continue
			}
			addScaledRow(work.row(r), work.row(col), f)
			addScaledRow(inv.row(r), inv.row(col), f)
		}
	}
	return inv, nil
}

func scaleRow(row []byte, c byte) {
	for i, v := range row {
		row[i] = gfMul[c][v]
	}
}

// addScaledRow does dst ^= c·src.
func addScaledRow(dst, src []byte, c byte) {
	for i, v := range src {
		if v != 0 {
			dst[i] ^= gfMul[c][v]
		}
	}
}

// codingMatrix returns the k×m parity sub-matrix A of the systematic
// generator [I; A] for an (m+k, m) Reed–Solomon code.
//
// A is a normalized Cauchy matrix: start from C[i][j] = 1/(x_i ⊕ y_j)
// with x_i = m+i (parity points) and y_j = j (data points) — all
// distinct, so every square submatrix of C is invertible (the Cauchy
// property). Then scale rows and columns:
//
//	A[i][j] = C[i][j] · C[0][0] / (C[i][0] · C[0][j])
//
// Nonzero row/column scaling preserves the any-submatrix-invertible
// property, and it forces row 0 and column 0 to be all ones. An
// all-ones first parity row means the k=1 code IS plain XOR parity:
// byte-identical to internal/parity on the same stripe rows, which is
// the compatibility guarantee the rest of the stack relies on.
func codingMatrix(m, k int) matrix {
	c := newMatrix(k, m)
	for i := 0; i < k; i++ {
		for j := 0; j < m; j++ {
			c.set(i, j, gfInv(byte((m+i)^j)))
		}
	}
	a := newMatrix(k, m)
	c00 := c.at(0, 0)
	for i := 0; i < k; i++ {
		for j := 0; j < m; j++ {
			num := gfMul[c.at(i, j)][c00]
			den := gfMul[c.at(i, 0)][c.at(0, j)]
			a.set(i, j, gfDiv(num, den))
		}
	}
	return a
}
