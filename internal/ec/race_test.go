//go:build race

package ec

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation slows the GF(2^8) kernels by more
// than an order of magnitude — performance gates are meaningless there.
const raceEnabled = true
