package ec

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"swift/internal/parity"
)

// ---------------------------------------------------------------------
// GF(2^8) algebra.

func TestGFFieldAxioms(t *testing.T) {
	// Spot-check the multiplication table against slow carry-less
	// polynomial multiplication mod 0x11d.
	slowMul := func(a, b byte) byte {
		var p int
		ai, bi := int(a), int(b)
		for bi > 0 {
			if bi&1 != 0 {
				p ^= ai
			}
			ai <<= 1
			if ai&0x100 != 0 {
				ai ^= gfPoly
			}
			bi >>= 1
		}
		return byte(p)
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := gfMulByte(byte(a), byte(b)), slowMul(byte(a), byte(b)); got != want {
				t.Fatalf("gfMul[%d][%d] = %d, want %d", a, b, got, want)
			}
		}
	}
	// Inverses: a * inv(a) == 1 for all nonzero a.
	for a := 1; a < 256; a++ {
		if got := gfMulByte(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) = %d for a=%d", got, a)
		}
	}
	// Division round-trips multiplication.
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			prod := gfMulByte(byte(a), byte(b))
			if got := gfDiv(prod, byte(b)); got != byte(a) {
				t.Fatalf("(%d*%d)/%d = %d, want %d", a, b, b, got, a)
			}
		}
	}
}

func TestGFNibbleTables(t *testing.T) {
	// The split-nibble kernel must agree with the full product table
	// for every (coefficient, byte) pair.
	for c := 0; c < 256; c++ {
		low, high := &mulTableLow[c], &mulTableHigh[c]
		for b := 0; b < 256; b++ {
			got := low[b&0x0f] ^ high[b>>4]
			if want := gfMul[c][b]; got != want {
				t.Fatalf("nibble mul c=%d b=%d: got %d want %d", c, b, got, want)
			}
		}
	}
}

func TestMulSliceKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := make([]byte, 257) // odd length to catch tail handling
	rng.Read(in)
	for _, c := range []byte{0, 1, 2, 29, 255} {
		out := make([]byte, len(in))
		mulSlice(c, in, out)
		acc := make([]byte, len(in))
		rng.Read(acc)
		want := make([]byte, len(in))
		copy(want, acc)
		mulAddSlice(c, in, acc)
		for i := range in {
			if out[i] != gfMul[c][in[i]] {
				t.Fatalf("mulSlice c=%d i=%d: got %d want %d", c, i, out[i], gfMul[c][in[i]])
			}
			if acc[i] != want[i]^gfMul[c][in[i]] {
				t.Fatalf("mulAddSlice c=%d i=%d: got %d want %d", c, i, acc[i], want[i]^gfMul[c][in[i]])
			}
		}
	}
}

// ---------------------------------------------------------------------
// Matrix algebra and code construction.

func TestMatrixInvert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 8; n++ {
		// Random matrices are invertible with high probability; retry
		// on singular until one inverts, then check A·inv(A) = I.
		for tries := 0; ; tries++ {
			m := newMatrix(n, n)
			rng.Read(m.data)
			inv, err := m.invert()
			if err != nil {
				if tries > 50 {
					t.Fatalf("no invertible %d×%d matrix in 50 tries", n, n)
				}
				continue
			}
			prod := m.mul(inv)
			want := identity(n)
			if !bytes.Equal(prod.data, want.data) {
				t.Fatalf("m·inv(m) != I for n=%d", n)
			}
			break
		}
	}
	// Singular matrix is reported, not mis-inverted.
	s := newMatrix(2, 2)
	s.set(0, 0, 3)
	s.set(0, 1, 5)
	s.set(1, 0, 3)
	s.set(1, 1, 5)
	if _, err := s.invert(); err == nil {
		t.Fatal("inverting a singular matrix succeeded")
	}
}

func TestCodingMatrixProperties(t *testing.T) {
	for _, mk := range [][2]int{{2, 1}, {3, 1}, {4, 2}, {8, 2}, {8, 3}, {10, 4}, {16, 4}} {
		m, k := mk[0], mk[1]
		a := codingMatrix(m, k)
		// Row 0 and column 0 must be all ones: this is what makes the
		// first parity unit plain XOR and keeps the k=1 code
		// byte-identical to internal/parity.
		for j := 0; j < m; j++ {
			if a.at(0, j) != 1 {
				t.Fatalf("m=%d k=%d: A[0][%d] = %d, want 1", m, k, j, a.at(0, j))
			}
		}
		for i := 0; i < k; i++ {
			if a.at(i, 0) != 1 {
				t.Fatalf("m=%d k=%d: A[%d][0] = %d, want 1", m, k, i, a.at(i, 0))
			}
			for j := 0; j < m; j++ {
				if a.at(i, j) == 0 {
					t.Fatalf("m=%d k=%d: A[%d][%d] = 0 (Cauchy elements are nonzero)", m, k, i, j)
				}
			}
		}
	}
}

// TestMDSProperty exhaustively verifies that every m-subset of the
// generator rows is invertible for a representative set of schemes —
// i.e. ANY k erasures are recoverable, the defining property of an MDS
// code.
func TestMDSProperty(t *testing.T) {
	for _, mk := range [][2]int{{2, 2}, {4, 2}, {5, 3}, {8, 2}, {6, 4}} {
		m, k := mk[0], mk[1]
		a := codingMatrix(m, k)
		total := m + k
		// Enumerate all subsets of size m of the m+k generator rows.
		var rowsOf func(mask uint32) matrix
		rowsOf = func(mask uint32) matrix {
			sub := newMatrix(m, m)
			r := 0
			for i := 0; i < total; i++ {
				if mask&(1<<uint(i)) == 0 {
					continue
				}
				if i < m {
					sub.set(r, i, 1)
				} else {
					copy(sub.row(r), a.row(i-m))
				}
				r++
			}
			return sub
		}
		for mask := uint32(0); mask < 1<<uint(total); mask++ {
			if popcount(mask) != m {
				continue
			}
			if _, err := rowsOf(mask).invert(); err != nil {
				t.Fatalf("m=%d k=%d: generator rows %#x singular: %v", m, k, mask, err)
			}
		}
	}
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// ---------------------------------------------------------------------
// Codec round trips.

func mkShards(t testing.TB, rng *rand.Rand, m, k, width int) [][]byte {
	t.Helper()
	shards := make([][]byte, m+k)
	for i := 0; i < m; i++ {
		shards[i] = make([]byte, width)
		rng.Read(shards[i])
	}
	for i := m; i < m+k; i++ {
		shards[i] = make([]byte, width)
	}
	return shards
}

func cloneShards(s [][]byte) [][]byte {
	out := make([][]byte, len(s))
	for i, sh := range s {
		if sh != nil {
			out[i] = append([]byte(nil), sh...)
		}
	}
	return out
}

func TestRoundTripAllErasureSets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, mk := range [][2]int{{2, 1}, {4, 1}, {4, 2}, {8, 2}, {5, 3}, {6, 4}} {
		m, k := mk[0], mk[1]
		for _, newc := range []func(int, int) (Codec, error){New, NewRS} {
			c, err := newc(m, k)
			if err != nil {
				t.Fatal(err)
			}
			shards := mkShards(t, rng, m, k, 512)
			if err := c.Encode(shards); err != nil {
				t.Fatal(err)
			}
			if ok, err := c.Verify(shards); err != nil || !ok {
				t.Fatalf("%s: Verify after Encode: ok=%v err=%v", c, ok, err)
			}
			total := m + k
			// Every erasure set of size <= k must decode byte-identically.
			for mask := uint32(1); mask < 1<<uint(total); mask++ {
				nerased := popcount(mask)
				if nerased > k {
					continue
				}
				work := cloneShards(shards)
				for i := 0; i < total; i++ {
					if mask&(1<<uint(i)) != 0 {
						work[i] = nil
					}
				}
				if err := c.Reconstruct(work); err != nil {
					t.Fatalf("%s: Reconstruct mask %#x: %v", c, mask, err)
				}
				for i := 0; i < total; i++ {
					if !bytes.Equal(work[i], shards[i]) {
						t.Fatalf("%s: shard %d differs after reconstructing mask %#x", c, i, mask)
					}
				}
			}
			// One erasure beyond the correction power must be refused.
			work := cloneShards(shards)
			for i := 0; i <= k; i++ {
				work[i] = nil
			}
			if err := c.Reconstruct(work); err == nil && k+1 <= total-m {
				t.Fatalf("%s: reconstructing %d erasures succeeded, want error", c, k+1)
			}
		}
	}
}

func TestShortTailShards(t *testing.T) {
	// Data units at the end of a file can be shorter than the striping
	// unit; they are treated as zero-padded. Encoding with a short
	// shard must match encoding its zero-padded twin.
	rng := rand.New(rand.NewSource(4))
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	full := mkShards(t, rng, 4, 2, 256)
	for i := 100; i < 256; i++ {
		full[3][i] = 0 // zero tail in the padded version
	}
	if err := c.Encode(full); err != nil {
		t.Fatal(err)
	}
	short := cloneShards(full)
	short[3] = short[3][:100]
	short[4] = make([]byte, 256)
	short[5] = make([]byte, 256)
	if err := c.Encode(short); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(short[4], full[4]) || !bytes.Equal(short[5], full[5]) {
		t.Fatal("short-shard parity differs from zero-padded parity")
	}
	if ok, _ := c.Verify(short); !ok {
		t.Fatal("Verify rejects short tail shard")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, mk := range [][2]int{{4, 1}, {8, 2}} {
		c, err := New(mk[0], mk[1])
		if err != nil {
			t.Fatal(err)
		}
		shards := mkShards(t, rng, mk[0], mk[1], 128)
		if err := c.Encode(shards); err != nil {
			t.Fatal(err)
		}
		shards[1][7] ^= 0x40
		if ok, err := c.Verify(shards); err != nil || ok {
			t.Fatalf("%s: Verify accepted a corrupt shard (ok=%v err=%v)", c, ok, err)
		}
	}
}

// ---------------------------------------------------------------------
// XOR compatibility: the contract that lets internal/core swap the
// legacy parity path for ec.Codec without rewriting any stored byte.

func TestXORCompat(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, m := range []int{1, 2, 3, 4, 7, 8, 15} {
		data := make([][]byte, m)
		for i := range data {
			data[i] = make([]byte, 333)
			rng.Read(data[i])
		}
		legacy := make([]byte, 333)
		parity.Compute(legacy, data)

		for _, newc := range []func(int, int) (Codec, error){New, NewRS} {
			c, err := newc(m, 1)
			if err != nil {
				t.Fatal(err)
			}
			shards := make([][]byte, m+1)
			copy(shards, data)
			shards[m] = make([]byte, 333)
			if err := c.Encode(shards); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(shards[m], legacy) {
				t.Fatalf("%T(m=%d): k=1 parity not byte-identical to internal/parity", c, m)
			}
			// Reconstruction of a lost data unit must also match the
			// legacy XOR-of-survivors path.
			lost := rng.Intn(m)
			surviving := make([][]byte, 0, m)
			for i, d := range data {
				if i != lost {
					surviving = append(surviving, d)
				}
			}
			surviving = append(surviving, legacy)
			want := make([]byte, 333)
			parity.Reconstruct(want, surviving)
			work := cloneShards(shards)
			work[lost] = nil
			if err := c.Reconstruct(work); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(work[lost], want) {
				t.Fatalf("%T(m=%d): k=1 reconstruction differs from parity.Reconstruct", c, m)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Inversion cache and stats.

func TestInversionCache(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, err := NewRS(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	shards := mkShards(t, rng, 6, 3, 64)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	erase := func() [][]byte {
		w := cloneShards(shards)
		w[1], w[4] = nil, nil
		return w
	}
	for i := 0; i < 5; i++ {
		if err := c.Reconstruct(erase()); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.InvCacheMisses != 1 || s.InvCacheHits != 4 {
		t.Fatalf("cache stats: misses=%d hits=%d, want 1/4", s.InvCacheMisses, s.InvCacheHits)
	}
	if s.ReconstructCalls != 5 || s.ByMissing[2] != 5 {
		t.Fatalf("reconstruct stats: calls=%d byMissing[2]=%d, want 5/5", s.ReconstructCalls, s.ByMissing[2])
	}
	if s.EncodeCalls != 1 || s.EncodeBytes != 6*64 {
		t.Fatalf("encode stats: calls=%d bytes=%d, want 1/%d", s.EncodeCalls, s.EncodeBytes, 6*64)
	}
	// A different failure set computes a fresh inverse.
	w := cloneShards(shards)
	w[0], w[7] = nil, nil
	if err := c.Reconstruct(w); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().InvCacheMisses; got != 2 {
		t.Fatalf("cache misses after new failure set: %d, want 2", got)
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{EncodeCalls: 5, EncodeBytes: 100, ByMissing: []int64{0, 3, 1}}
	b := Stats{EncodeCalls: 2, EncodeBytes: 40, ByMissing: []int64{0, 1, 0}}
	d := a.Sub(b)
	if d.EncodeCalls != 3 || d.EncodeBytes != 60 || d.ByMissing[1] != 2 || d.ByMissing[2] != 1 {
		t.Fatalf("Sub: %+v", d)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("New(0,1) succeeded")
	}
	if _, err := New(4, 0); err == nil {
		t.Fatal("New(4,0) succeeded")
	}
	if _, err := New(250, 10); err == nil {
		t.Fatal("New(250,10) succeeded (m+k > 256)")
	}
	c, err := New(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, isXOR := c.(*xorCodec); !isXOR {
		t.Fatalf("New(4,1) = %T, want *xorCodec", c)
	}
	c2, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.String() != "4+2" {
		t.Fatalf("String() = %q, want 4+2", c2.String())
	}
}

// ---------------------------------------------------------------------
// Fuzzing: random scheme, random data, random erasure set of size <= k
// must always decode byte-identically.

func FuzzECRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(2), uint16(64), uint32(0x3))
	f.Add(int64(2), uint8(16), uint8(4), uint16(1), uint32(0xf))
	f.Add(int64(3), uint8(1), uint8(1), uint16(4096), uint32(0x1))
	f.Add(int64(4), uint8(8), uint8(3), uint16(512), uint32(0x700))
	f.Fuzz(func(t *testing.T, seed int64, mb, kb uint8, widthB uint16, eraseMask uint32) {
		m := int(mb)%16 + 1 // 1..16
		k := int(kb)%4 + 1  // 1..4
		width := int(widthB)%4096 + 1
		c, err := New(m, k)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		shards := mkShards(t, rng, m, k, width)
		if err := c.Encode(shards); err != nil {
			t.Fatal(err)
		}
		if ok, err := c.Verify(shards); err != nil || !ok {
			t.Fatalf("Verify after Encode: ok=%v err=%v", ok, err)
		}
		// Trim the erasure mask to at most k set bits within range.
		total := m + k
		work := cloneShards(shards)
		erased := 0
		for i := 0; i < total && erased < k; i++ {
			if eraseMask&(1<<uint(i)) != 0 {
				work[i] = nil
				erased++
			}
		}
		if err := c.Reconstruct(work); err != nil {
			t.Fatalf("Reconstruct (m=%d k=%d erased=%d): %v", m, k, erased, err)
		}
		for i := range work {
			if !bytes.Equal(work[i], shards[i]) {
				t.Fatalf("shard %d differs after round trip (m=%d k=%d)", i, m, k)
			}
		}
	})
}

// ---------------------------------------------------------------------
// Throughput gate and benchmarks.

// TestEncodeThroughputGate enforces the acceptance floor: the m=8,k=2
// encode kernel must sustain >= 300 MB/s of data throughput. Best of
// three one-shot runs to ride out scheduler noise on shared CI.
func TestEncodeThroughputGate(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput gate skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("throughput gate skipped under the race detector")
	}
	const (
		m, k  = 8, 2
		unit  = 64 << 10
		floor = 300.0 // MB/s over data bytes consumed
	)
	c, err := New(m, k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	shards := mkShards(t, rng, m, k, unit)
	best := 0.0
	for run := 0; run < 3; run++ {
		res := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(int64(m * unit))
			for i := 0; i < b.N; i++ {
				if err := c.Encode(shards); err != nil {
					b.Fatal(err)
				}
			}
		})
		if res.T <= 0 {
			continue
		}
		mbps := float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6
		if mbps > best {
			best = mbps
		}
	}
	t.Logf("encode m=%d k=%d unit=%dKiB: best %.1f MB/s", m, k, unit>>10, best)
	if best < floor {
		t.Fatalf("encode throughput %.1f MB/s below %.0f MB/s floor", best, floor)
	}
}

func benchEncode(b *testing.B, m, k, unit int) {
	c, err := New(m, k)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	shards := mkShards(b, rng, m, k, unit)
	b.SetBytes(int64(m * unit))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func benchReconstruct(b *testing.B, m, k, unit, nlost int) {
	c, err := New(m, k)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	shards := mkShards(b, rng, m, k, unit)
	if err := c.Encode(shards); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(nlost * unit))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := make([][]byte, len(shards))
		copy(work, shards)
		for j := 0; j < nlost; j++ {
			work[j] = nil
		}
		if err := c.Reconstruct(work); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	for _, cfg := range []struct{ m, k, unit int }{
		{3, 1, 4 << 10}, {3, 1, 64 << 10},
		{8, 2, 4 << 10}, {8, 2, 64 << 10}, {8, 2, 1 << 20},
		{16, 4, 64 << 10},
	} {
		b.Run(fmt.Sprintf("m%d_k%d_%dKiB", cfg.m, cfg.k, cfg.unit>>10), func(b *testing.B) {
			benchEncode(b, cfg.m, cfg.k, cfg.unit)
		})
	}
}

func BenchmarkReconstruct(b *testing.B) {
	for _, cfg := range []struct{ m, k, unit, lost int }{
		{3, 1, 64 << 10, 1},
		{8, 2, 64 << 10, 1}, {8, 2, 64 << 10, 2},
		{16, 4, 64 << 10, 4},
	} {
		b.Run(fmt.Sprintf("m%d_k%d_%dKiB_lost%d", cfg.m, cfg.k, cfg.unit>>10, cfg.lost), func(b *testing.B) {
			benchReconstruct(b, cfg.m, cfg.k, cfg.unit, cfg.lost)
		})
	}
}
