// Package disk provides the parametric magnetic-disk model used everywhere
// the paper needs a storage device: the storage agents' local SCSI disks,
// the NFS server's IPI drives, and the six drive types swept by the §5
// simulator. The model follows the paper's: the time to transfer a block
// is the seek time plus the rotational delay plus the media transfer time,
// with seek and rotational delay drawn as independent uniform random
// variables. A per-operation overhead term models controller and driver
// cost, and a sequential mode models read-ahead (no positioning cost).
package disk

import (
	"math/rand"
	"sync"
	"time"
)

// Model holds the static parameters of a disk drive.
type Model struct {
	Name string

	// AvgSeek is the mean random seek time. Random seeks are drawn
	// uniformly from [0, 2*AvgSeek].
	AvgSeek time.Duration
	// TrackSeek is the track-to-track seek used for sequential
	// synchronous operations.
	TrackSeek time.Duration
	// RotationPeriod is the time of one full revolution; the mean
	// rotational delay is half of it, drawn uniformly from
	// [0, RotationPeriod].
	RotationPeriod time.Duration
	// MediaRate is the sustained media transfer rate in bytes/second.
	MediaRate float64
	// SeqOverhead is the per-operation controller/driver overhead for
	// sequential (read-ahead) transfers.
	SeqOverhead time.Duration
	// OpOverhead is the per-operation overhead for random transfers.
	OpOverhead time.Duration
	// SyncWriteOverhead is the per-operation overhead for synchronous
	// writes (file-system bookkeeping included).
	SyncWriteOverhead time.Duration
}

// AvgRotation returns the mean rotational delay (half a revolution).
func (m Model) AvgRotation() time.Duration { return m.RotationPeriod / 2 }

// TransferTime returns the media transfer time for n bytes.
func (m Model) TransferTime(n int64) time.Duration {
	return time.Duration(float64(n) / m.MediaRate * float64(time.Second))
}

// SeekTime draws a random seek time, uniform on [0, 2*AvgSeek].
func (m Model) SeekTime(rng *rand.Rand) time.Duration {
	if m.AvgSeek <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(2 * m.AvgSeek)))
}

// RotationDelay draws a random rotational delay, uniform on
// [0, RotationPeriod].
func (m Model) RotationDelay(rng *rand.Rand) time.Duration {
	if m.RotationPeriod <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(m.RotationPeriod)))
}

// AccessTime returns the modeled service time for one block access. This
// is the function the §5 simulator uses directly: positioning (seek +
// rotation) plus media transfer.
func (m Model) AccessTime(rng *rand.Rand, n int64) time.Duration {
	return m.SeekTime(rng) + m.RotationDelay(rng) + m.TransferTime(n)
}

// MeanAccessTime returns the expected service time for one block access,
// useful for closed-form sanity checks.
func (m Model) MeanAccessTime(n int64) time.Duration {
	return m.AvgSeek + m.AvgRotation() + m.TransferTime(n)
}

// Device is a stateful simulated drive: a single spindle that serializes
// operations and charges modeled service times by sleeping. The sleep
// function is injectable so a scaled clock (e.g. the memnet time scale)
// can be used. A Device tracks the last accessed offset to recognize
// sequential access, which models read-ahead and track-buffer behaviour.
type Device struct {
	model Model
	sleep func(time.Duration)
	rng   *rand.Rand

	// AsyncWriteRate, when > 0, is the buffer-cache absorption rate in
	// bytes/second for asynchronous writes (no positioning, no media
	// transfer — the SunOS write-behind path the prototype's agents
	// used). When 0, all writes are synchronous.
	asyncWriteRate float64

	mu      sync.Mutex
	nextOff int64
	busy    time.Duration // cumulative busy time, for utilization stats
}

// Option configures a Device.
type Option func(*Device)

// WithSleeper substitutes the function used to charge modeled time.
func WithSleeper(sleep func(time.Duration)) Option {
	return func(d *Device) { d.sleep = sleep }
}

// WithAsyncWrites enables buffered (asynchronous) writes absorbed at the
// given rate in bytes/second.
func WithAsyncWrites(rate float64) Option {
	return func(d *Device) { d.asyncWriteRate = rate }
}

// WithSeed seeds the device's positioning RNG for reproducible runs.
func WithSeed(seed int64) Option {
	return func(d *Device) { d.rng = rand.New(rand.NewSource(seed)) }
}

// NewDevice creates a simulated drive for the given model.
func NewDevice(m Model, opts ...Option) *Device {
	d := &Device{
		model: m,
		//lint:allow clockcheck default sleeper for standalone devices; harnesses inject the scaled clock via WithSleeper
		sleep: time.Sleep,
		rng:   rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Model returns the device's drive parameters.
func (d *Device) Model() Model { return d.model }

// BusyTime returns the cumulative modeled service time charged so far.
func (d *Device) BusyTime() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.busy
}

// charge sleeps for dur with the spindle lock held, serializing accesses.
func (d *Device) charge(dur time.Duration, endOff int64) {
	d.busy += dur
	d.nextOff = endOff
	d.mu.Unlock()
	d.sleep(dur)
}

// Read charges the modeled time of reading n bytes at offset off.
func (d *Device) Read(off, n int64) {
	d.mu.Lock()
	m := d.model
	var dur time.Duration
	if off == d.nextOff {
		// Sequential: read-ahead hides positioning.
		dur = m.SeqOverhead + m.TransferTime(n)
	} else {
		dur = m.OpOverhead + m.SeekTime(d.rng) + m.RotationDelay(d.rng) + m.TransferTime(n)
	}
	d.charge(dur, off+n) // unlocks
}

// Write charges the modeled time of writing n bytes at offset off. When
// sync is false and the device has asynchronous writes enabled, only the
// buffer-cache copy cost is charged.
func (d *Device) Write(off, n int64, sync bool) {
	d.mu.Lock()
	m := d.model
	var dur time.Duration
	switch {
	case !sync && d.asyncWriteRate > 0:
		dur = time.Duration(float64(n) / d.asyncWriteRate * float64(time.Second))
	case off == d.nextOff:
		// Sequential sync write: track-to-track reposition plus
		// rotational delay plus transfer.
		dur = m.SyncWriteOverhead + m.TrackSeek + d.model.RotationDelay(d.rng) + m.TransferTime(n)
	default:
		dur = m.SyncWriteOverhead + m.SeekTime(d.rng) + m.RotationDelay(d.rng) + m.TransferTime(n)
	}
	d.charge(dur, off+n) // unlocks
}

// Sync charges the cost of flushing buffered data; with async writes this
// models an fsync as a single sequential sync write of the given size.
func (d *Device) Sync(n int64) {
	d.mu.Lock()
	m := d.model
	dur := m.SyncWriteOverhead + m.TrackSeek + d.model.RotationDelay(d.rng) + m.TransferTime(n)
	d.charge(dur, d.nextOff)
}
