package disk

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeSleeper records charged durations instead of sleeping.
type fakeSleeper struct {
	mu    sync.Mutex
	total time.Duration
}

func (f *fakeSleeper) sleep(d time.Duration) {
	f.mu.Lock()
	f.total += d
	f.mu.Unlock()
}

func TestTransferTime(t *testing.T) {
	m := Model{MediaRate: 1e6}
	if got := m.TransferTime(1e6); got != time.Second {
		t.Fatalf("transfer = %v", got)
	}
	if got := m.TransferTime(250_000); got != 250*time.Millisecond {
		t.Fatalf("transfer = %v", got)
	}
}

func TestSeekAndRotationDistributions(t *testing.T) {
	m := Model{AvgSeek: 16 * time.Millisecond, RotationPeriod: 16600 * time.Microsecond}
	rng := rand.New(rand.NewSource(1))
	var seekSum, rotSum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		s := m.SeekTime(rng)
		if s < 0 || s >= 2*m.AvgSeek {
			t.Fatalf("seek %v out of [0, 2*avg)", s)
		}
		seekSum += s
		r := m.RotationDelay(rng)
		if r < 0 || r >= m.RotationPeriod {
			t.Fatalf("rotation %v out of [0, period)", r)
		}
		rotSum += r
	}
	// Means within 3% of the configured averages.
	if mean := seekSum / n; mean < 15500*time.Microsecond || mean > 16500*time.Microsecond {
		t.Fatalf("mean seek = %v", mean)
	}
	if mean := rotSum / n; mean < 8050*time.Microsecond || mean > 8550*time.Microsecond {
		t.Fatalf("mean rotation = %v", mean)
	}
}

func TestZeroParametersDrawZero(t *testing.T) {
	var m Model
	rng := rand.New(rand.NewSource(1))
	if m.SeekTime(rng) != 0 || m.RotationDelay(rng) != 0 {
		t.Fatal("zero model drew nonzero positioning")
	}
}

func TestMeanAccessMatchesPaperFigure3(t *testing.T) {
	// The paper: "transferring 32 kilobytes required about 37
	// milliseconds on the average" for the M2372K.
	m := FujitsuM2372K()
	mean := m.MeanAccessTime(32 * 1024)
	if mean < 36*time.Millisecond || mean > 38*time.Millisecond {
		t.Fatalf("mean access for 32K = %v, paper says ≈37ms", mean)
	}
}

func TestDeviceSequentialReadRate(t *testing.T) {
	// The Sun SCSI profile must reproduce the paper's ≈654-682 KB/s
	// sequential read band (Table 2).
	fs := &fakeSleeper{}
	d := NewDevice(ProfileSunSCSI(), WithSleeper(fs.sleep), WithSeed(2))
	const total = 3 << 20
	for off := int64(0); off < total; off += 8192 {
		d.Read(off, 8192)
	}
	rate := float64(total) / fs.total.Seconds() / 1024
	if rate < 640 || rate < 0 || rate > 700 {
		t.Fatalf("sequential read rate = %.0f KB/s, want ≈654-682", rate)
	}
}

func TestDeviceSyncWriteRate(t *testing.T) {
	// And the ≈314-316 KB/s synchronous write band.
	fs := &fakeSleeper{}
	d := NewDevice(ProfileSunSCSI(), WithSleeper(fs.sleep), WithSeed(3))
	const total = 3 << 20
	for off := int64(0); off < total; off += 8192 {
		d.Write(off, 8192, true)
	}
	rate := float64(total) / fs.total.Seconds() / 1024
	if rate < 290 || rate > 345 {
		t.Fatalf("sync write rate = %.0f KB/s, want ≈314-316", rate)
	}
}

func TestDeviceAsyncWritesAreCheap(t *testing.T) {
	fs := &fakeSleeper{}
	d := NewDevice(ProfileSunSCSI(), WithSleeper(fs.sleep), WithAsyncWrites(10e6))
	d.Write(0, 1e6, false)
	if fs.total != 100*time.Millisecond {
		t.Fatalf("async write charged %v, want 100ms", fs.total)
	}
	// Sync flag still forces the disk path.
	before := fs.total
	d.Write(2e6, 8192, true)
	if fs.total-before < 10*time.Millisecond {
		t.Fatal("sync write under async mode too cheap")
	}
}

func TestRandomReadsCostMoreThanSequential(t *testing.T) {
	seqS, rndS := &fakeSleeper{}, &fakeSleeper{}
	seq := NewDevice(ProfileSunSCSI(), WithSleeper(seqS.sleep), WithSeed(4))
	rnd := NewDevice(ProfileSunSCSI(), WithSleeper(rndS.sleep), WithSeed(4))
	for i := int64(0); i < 64; i++ {
		seq.Read(i*8192, 8192)
		rnd.Read(((i*7)%64)*1_000_000, 8192) // scattered
	}
	if rndS.total < 2*seqS.total {
		t.Fatalf("random %v not clearly slower than sequential %v", rndS.total, seqS.total)
	}
}

func TestBusyTimeAccumulates(t *testing.T) {
	fs := &fakeSleeper{}
	d := NewDevice(ProfileSunSCSI(), WithSleeper(fs.sleep))
	d.Read(0, 8192)
	d.Read(8192, 8192)
	if d.BusyTime() != fs.total {
		t.Fatalf("busy %v != slept %v", d.BusyTime(), fs.total)
	}
}

func TestSimulatorDriveOrdering(t *testing.T) {
	// For 4 KB accesses (positioning-dominated), the 3380K must be the
	// fastest drive and the RA82 the slowest, as in Figure 5.
	drives := SimulatorDrives()
	first := drives[0].MeanAccessTime(4096)
	last := drives[len(drives)-1].MeanAccessTime(4096)
	for _, m := range drives[1 : len(drives)-1] {
		mid := m.MeanAccessTime(4096)
		if mid < first {
			t.Fatalf("%s faster than IBM 3380K", m.Name)
		}
		if mid > last {
			t.Fatalf("%s slower than DEC RA82", m.Name)
		}
	}
}

func TestProfileNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range SimulatorDrives() {
		if m.Name == "" || seen[m.Name] {
			t.Fatalf("bad or duplicate drive name %q", m.Name)
		}
		seen[m.Name] = true
	}
}
