package disk

import "time"

// Calibrated drive profiles.
//
// ProfileSunSCSI and ProfileSunIPI reproduce the paper's measured baseline
// rates from first-principles parameters: the Sun SCSI profile yields
// ≈ 680 KB/s sequential reads (synchronous-mode SCSI under SunOS 4.1.1)
// and ≈ 315 KB/s synchronous 8 KB writes; the IPI profile is the Sun 4/390
// NFS server's faster drive (rated "more than 3 megabytes/second").
//
// The six simulator drives are the ones swept in Figures 5 and 6. The
// paper gives parameters only for the Fujitsu M2372K (16 ms seek, 8.3 ms
// rotation, 2.5 MB/s); the remaining five carry nominal 1990 catalog
// values, documented in DESIGN.md.

// ProfileSunSCSI models the 104/207 MB local SCSI disks of the prototype's
// SPARCstation hosts under SunOS 4.1.1.
func ProfileSunSCSI() Model {
	return Model{
		Name:              "Sun-SCSI",
		AvgSeek:           16 * time.Millisecond,
		TrackSeek:         4 * time.Millisecond,
		RotationPeriod:    16600 * time.Microsecond, // 3600 rpm
		MediaRate:         1.30e6,
		SeqOverhead:       5800 * time.Microsecond,
		OpOverhead:        5800 * time.Microsecond,
		SyncWriteOverhead: 7500 * time.Microsecond,
	}
}

// ProfileSunIPI models the Sun 4/390 server's IPI drives.
func ProfileSunIPI() Model {
	return Model{
		Name:              "Sun-IPI",
		AvgSeek:           16 * time.Millisecond,
		TrackSeek:         4 * time.Millisecond,
		RotationPeriod:    16600 * time.Microsecond,
		MediaRate:         3.0e6,
		SeqOverhead:       3 * time.Millisecond,
		OpOverhead:        3 * time.Millisecond,
		SyncWriteOverhead: 5 * time.Millisecond,
	}
}

// Simulator drives (Figures 3–6).

// IBM3380K is the fastest drive of the Figure 5/6 sweep.
func IBM3380K() Model {
	return Model{
		Name:           "IBM 3380K",
		AvgSeek:        15 * time.Millisecond,
		TrackSeek:      3 * time.Millisecond,
		RotationPeriod: 16600 * time.Microsecond,
		MediaRate:      3.0e6,
	}
}

// FujitsuM2361A is the Fujitsu Eagle-class drive.
func FujitsuM2361A() Model {
	return Model{
		Name:           "Fujitsu M2361A",
		AvgSeek:        16700 * time.Microsecond,
		TrackSeek:      4 * time.Millisecond,
		RotationPeriod: 16600 * time.Microsecond,
		MediaRate:      2.5e6,
	}
}

// FujitsuM2351A is the older Fujitsu drive.
func FujitsuM2351A() Model {
	return Model{
		Name:           "Fujitsu M2351A",
		AvgSeek:        18 * time.Millisecond,
		TrackSeek:      4 * time.Millisecond,
		RotationPeriod: 16600 * time.Microsecond,
		MediaRate:      2.2e6,
	}
}

// WrenV is the CDC Wren V.
func WrenV() Model {
	return Model{
		Name:           "Wren V",
		AvgSeek:        19 * time.Millisecond,
		TrackSeek:      4 * time.Millisecond,
		RotationPeriod: 17200 * time.Microsecond,
		MediaRate:      1.8e6,
	}
}

// FujitsuM2372K is the drive of Figure 3, "typical for 1990 file servers":
// average seek 16 ms, average rotational delay 8.3 ms, 2.5 MB/s.
func FujitsuM2372K() Model {
	return Model{
		Name:           "Fujitsu M2372K",
		AvgSeek:        16 * time.Millisecond,
		TrackSeek:      4 * time.Millisecond,
		RotationPeriod: 16600 * time.Microsecond,
		MediaRate:      2.5e6,
	}
}

// DECRA82 is the slowest drive of the sweep; Figure 4's "slower storage
// device" (1.5 MB/s).
func DECRA82() Model {
	return Model{
		Name:           "DEC RA82",
		AvgSeek:        24 * time.Millisecond,
		TrackSeek:      6 * time.Millisecond,
		RotationPeriod: 16600 * time.Microsecond,
		MediaRate:      1.5e6,
	}
}

// SimulatorDrives returns the six drives of Figures 5 and 6, fastest
// first, in the paper's legend order.
func SimulatorDrives() []Model {
	return []Model{
		IBM3380K(), FujitsuM2361A(), FujitsuM2351A(),
		WrenV(), FujitsuM2372K(), DECRA82(),
	}
}
