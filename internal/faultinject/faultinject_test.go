package faultinject

import (
	"reflect"
	"testing"
	"time"

	"swift/internal/transport/memnet"
)

func testCluster(t *testing.T) (Cluster, *memnet.Host, *memnet.Host) {
	t.Helper()
	n := memnet.New(1)
	seg := n.NewSegment("s", memnet.SegmentConfig{BandwidthBps: 1e10, FrameOverhead: 46})
	a := n.MustHost("agent0", memnet.HostConfig{}, seg)
	b := n.MustHost("client", memnet.HostConfig{}, seg)
	return Cluster{
		Net:        n,
		Segments:   []*memnet.Segment{seg},
		AgentHosts: []*memnet.Host{a},
	}, a, b
}

// TestApplyMediumFaults: medium events flip the segment's runtime state
// and their heal counterparts restore it.
func TestApplyMediumFaults(t *testing.T) {
	c, host, _ := testCluster(t)
	ctl := New(c, t.Logf)
	seg := c.Segments[0]

	cases := []struct {
		fault, heal Event
	}{
		{Event{Kind: KindLossBurst, Rate: 0.5}, Event{Kind: KindLossClear}},
		{Event{Kind: KindLatencySpike, Latency: 5 * time.Millisecond}, Event{Kind: KindLatencyClear}},
		{Event{Kind: KindCorruptBurst, Rate: 0.1}, Event{Kind: KindCorruptClear}},
	}
	for _, tc := range cases {
		if err := ctl.Apply(tc.fault); err != nil {
			t.Fatalf("apply %v: %v", tc.fault.Kind, err)
		}
		if err := ctl.Apply(tc.heal); err != nil {
			t.Fatalf("apply %v: %v", tc.heal.Kind, err)
		}
	}

	if err := ctl.Apply(Event{Kind: KindPartition, Agent: 0}); err != nil {
		t.Fatal(err)
	}
	if !seg.Isolated(host.Name()) {
		t.Fatal("partition did not isolate the agent host")
	}
	if err := ctl.Apply(Event{Kind: KindHealPartition, Agent: 0}); err != nil {
		t.Fatal(err)
	}
	if seg.Isolated(host.Name()) {
		t.Fatal("heal did not clear the partition")
	}

	if err := ctl.Apply(Event{Kind: KindPauseHost, Agent: 0}); err != nil {
		t.Fatal(err)
	}
	if !host.Paused() {
		t.Fatal("pause did not freeze the host")
	}
	if err := ctl.Apply(Event{Kind: KindResumeHost, Agent: 0}); err != nil {
		t.Fatal(err)
	}
	if host.Paused() {
		t.Fatal("resume did not thaw the host")
	}

	if n := len(ctl.Log()); n != 10 {
		t.Fatalf("event log has %d entries, want 10", n)
	}
}

// TestApplyCrashCallbacks: crash/restart route through the harness
// callbacks; missing callbacks are an error.
func TestApplyCrashCallbacks(t *testing.T) {
	c, _, _ := testCluster(t)
	var crashed, restarted int
	c.Crash = func(i int) error { crashed = i + 1; return nil }
	c.Restart = func(i int) error { restarted = i + 1; return nil }
	ctl := New(c, nil)
	if err := ctl.Apply(Event{Kind: KindCrashAgent, Agent: 0}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Apply(Event{Kind: KindRestartAgent, Agent: 0}); err != nil {
		t.Fatal(err)
	}
	if crashed != 1 || restarted != 1 {
		t.Fatalf("crashed=%d restarted=%d", crashed, restarted)
	}

	c.Crash = nil
	ctl2 := New(c, nil)
	if err := ctl2.Apply(Event{Kind: KindCrashAgent}); err == nil {
		t.Fatal("crash without callback did not error")
	}
}

// TestRunWalksScheduleAndHeals: Run applies events in modeled-time order
// and a stop mid-walk heals outstanding faults.
func TestRunWalksScheduleAndHeals(t *testing.T) {
	c, host, _ := testCluster(t)
	ctl := New(c, t.Logf)
	sched := []Event{
		{At: 20 * time.Millisecond, Kind: KindHealPartition},
		{At: 5 * time.Millisecond, Kind: KindPartition, Agent: 0},
	}
	if err := ctl.Run(sched, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if c.Segments[0].Isolated(host.Name()) {
		t.Fatal("schedule left the partition in place")
	}
	log := ctl.Log()
	if len(log) != 2 || log[0] != (Event{At: 5 * time.Millisecond, Kind: KindPartition}).String() {
		t.Fatalf("log order wrong: %v", log)
	}

	// Stop before the heal event: Run must heal on the way out.
	ctl2 := New(c, t.Logf)
	stop := make(chan struct{})
	close(stop)
	err := ctl2.Run([]Event{
		{At: 0, Kind: KindPauseHost, Agent: 0},
		{At: time.Hour, Kind: KindResumeHost, Agent: 0},
	}, stop)
	if err != nil {
		t.Fatalf("stopped run: %v", err)
	}
	if host.Paused() {
		t.Fatal("stop did not heal the paused host")
	}
}

// TestRandomScheduleDeterministicSerialized: same seed, same schedule;
// fault windows never overlap; every requested family appears; every
// fault has its heal.
func TestRandomScheduleDeterministicSerialized(t *testing.T) {
	o := ScheduleOpts{
		Agents: 4, Segments: 2, Duration: 10 * time.Second,
		MinFault: 200 * time.Millisecond, MaxFault: 500 * time.Millisecond,
		Gap: 500 * time.Millisecond,
	}
	s1 := RandomSchedule(42, o)
	s2 := RandomSchedule(42, o)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed produced different schedules")
	}
	if len(s1) == 0 || len(s1)%2 != 0 {
		t.Fatalf("schedule has %d events, want a positive even count", len(s1))
	}

	heal := map[Kind]Kind{
		KindCrashAgent:   KindRestartAgent,
		KindPartition:    KindHealPartition,
		KindPauseHost:    KindResumeHost,
		KindLatencySpike: KindLatencyClear,
		KindLossBurst:    KindLossClear,
		KindCorruptBurst: KindCorruptClear,
	}
	seen := map[Kind]bool{}
	var prevEnd time.Duration
	for i := 0; i < len(s1); i += 2 {
		f, h := s1[i], s1[i+1]
		want, ok := heal[f.Kind]
		if !ok {
			t.Fatalf("event %d: unexpected fault kind %v", i, f.Kind)
		}
		if h.Kind != want {
			t.Fatalf("fault %v healed by %v", f.Kind, h.Kind)
		}
		if f.At < prevEnd {
			t.Fatalf("fault window at %v overlaps previous ending %v", f.At, prevEnd)
		}
		if h.At <= f.At {
			t.Fatalf("heal at %v not after fault at %v", h.At, f.At)
		}
		prevEnd = h.At
		seen[f.Kind] = true
	}
	for k := range heal {
		if !seen[k] {
			t.Fatalf("family %v missing from schedule", k)
		}
	}

	if s3 := RandomSchedule(43, o); reflect.DeepEqual(s1, s3) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestApplyMediatorCallbacks(t *testing.T) {
	c, _, _ := testCluster(t)
	var killed, restarted, drained int
	c.KillMediator = func(i int) error { killed = i + 1; return nil }
	c.RestartMediator = func(i int) error { restarted = i + 1; return nil }
	c.DrainMediator = func(i int) error { drained = i + 1; return nil }
	ctl := New(c, nil)
	for _, e := range []Event{
		{Kind: KindKillMediator, Mediator: 1},
		{Kind: KindRestartMediator, Mediator: 1},
		{Kind: KindDrainMediator, Mediator: 2},
	} {
		if err := ctl.Apply(e); err != nil {
			t.Fatalf("%v: %v", e.Kind, err)
		}
	}
	if killed != 2 || restarted != 2 || drained != 3 {
		t.Fatalf("killed=%d restarted=%d drained=%d", killed, restarted, drained)
	}
	log := ctl.Log()
	if len(log) != 3 || log[0] != "kill-mediator med1 @0s" {
		t.Fatalf("log: %v", log)
	}

	c.KillMediator = nil
	ctl2 := New(c, nil)
	if err := ctl2.Apply(Event{Kind: KindKillMediator}); err == nil {
		t.Fatal("kill-mediator without callback did not error")
	}
}

func TestRandomScheduleMediatorKills(t *testing.T) {
	evs := RandomSchedule(5, ScheduleOpts{
		Agents: 4, Segments: 1, Mediators: 3,
		Duration: 10 * time.Second,
		MinFault: 200 * time.Millisecond, MaxFault: 400 * time.Millisecond,
		Kinds: []Kind{KindKillMediator},
	})
	if len(evs) == 0 {
		t.Fatal("no events scheduled")
	}
	if len(evs)%2 != 0 {
		t.Fatalf("kill without restart: %d events", len(evs))
	}
	for i := 0; i < len(evs); i += 2 {
		kill, restart := evs[i], evs[i+1]
		if kill.Kind != KindKillMediator || restart.Kind != KindRestartMediator {
			t.Fatalf("window %d: %v then %v", i/2, kill.Kind, restart.Kind)
		}
		if kill.Mediator != restart.Mediator {
			t.Fatalf("window %d kills med%d but restarts med%d", i/2, kill.Mediator, restart.Mediator)
		}
		if kill.Mediator < 0 || kill.Mediator >= 3 {
			t.Fatalf("window %d targets mediator %d of 3", i/2, kill.Mediator)
		}
		if restart.At <= kill.At {
			t.Fatalf("window %d restart not after kill", i/2)
		}
	}
}
