// Package faultinject is a runtime fault controller for modeled Swift
// installations on internal/transport/memnet. It turns the static knobs a
// test could only set at construction time (a segment's LossRate, a
// manually Close()d agent) into faults that can be injected and healed
// while traffic is flowing:
//
//   - crash and restart an agent process (file handles die with it);
//   - pause and resume an agent's host (frozen protocol stack, frames
//     queue in its ingress buffer);
//   - partition an agent off its segments and heal the partition;
//   - spike a segment's latency;
//   - flip a segment's frame-loss rate (a loss burst);
//   - corrupt payload bytes in transit (exercising wire's CRC and the
//     control-payload parsers).
//
// Faults are described by Events and applied either one at a time
// (Controller.Apply) or as a deterministic, seeded schedule walked in
// modeled time (Controller.Run). RandomSchedule generates serialized
// fault windows — at most one fault active at any instant — so a
// parity-protected installation should mask every window.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"swift/internal/transport/memnet"
)

// Kind identifies a fault (or its healing counterpart).
type Kind int

// Fault kinds. Each *Burst/Spike/Crash/Pause/Partition kind has a healing
// counterpart that restores normal operation.
const (
	KindInvalid         Kind = iota
	KindCrashAgent           // kill the agent process; its sessions and handles die
	KindRestartAgent         // restart the agent process on the same host and store
	KindPauseHost            // freeze the agent host's protocol stack
	KindResumeHost           // thaw it
	KindPartition            // isolate the agent's host on all its segments
	KindHealPartition        // clear every isolation on the agent's segments
	KindLatencySpike         // add Event.Latency to the segment's delivery time
	KindLatencyClear         // restore normal latency
	KindLossBurst            // set the segment's loss rate to Event.Rate
	KindLossClear            // restore zero injected loss
	KindCorruptBurst         // flip payload bytes with probability Event.Rate
	KindCorruptClear         // stop corrupting
	KindBitrot               // flip bytes at rest in the agent's store (beneath the integrity envelope)
	KindKillMediator         // crash mediator replica Event.Mediator; its leases freeze in place
	KindRestartMediator      // restart the replica empty; it reconciles from surviving peers
	KindDrainMediator        // gracefully drain the replica: hand its sessions to peers
	KindDemandSurge          // multiply offered load by Event.Rate (overload drills)
	KindDemandClear          // restore the baseline offered load
	KindAgentSlowdown        // add Event.Latency to agent Event.Agent's read service time
	KindAgentSlowClear       // clear the agent's injected service delay
)

var kindNames = [...]string{
	"invalid", "crash-agent", "restart-agent", "pause-host", "resume-host",
	"partition", "heal-partition", "latency-spike", "latency-clear",
	"loss-burst", "loss-clear", "corrupt-burst", "corrupt-clear", "bitrot",
	"kill-mediator", "restart-mediator", "drain-mediator",
	"demand-surge", "demand-clear", "agent-slowdown", "agent-slow-clear",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault transition.
type Event struct {
	// At is the modeled instant (offset from Run's start) to apply the
	// event.
	At time.Duration
	// Kind selects the fault.
	Kind Kind
	// Agent is the target agent index for agent/host faults.
	Agent int
	// Segment is the target segment index for medium faults.
	Segment int
	// Rate parameterizes loss and corruption bursts.
	Rate float64
	// Latency parameterizes latency spikes.
	Latency time.Duration
	// Seed parameterizes bitrot events: it makes the byte flips the
	// Cluster.Bitrot callback performs deterministic per event.
	Seed int64
	// Mediator is the target replica index for mediator faults.
	Mediator int
}

func (e Event) String() string {
	switch e.Kind {
	case KindLatencySpike:
		return fmt.Sprintf("%v seg%d +%v @%v", e.Kind, e.Segment, e.Latency, e.At)
	case KindLossBurst, KindCorruptBurst:
		return fmt.Sprintf("%v seg%d %.0f%% @%v", e.Kind, e.Segment, e.Rate*100, e.At)
	case KindLatencyClear, KindLossClear, KindCorruptClear:
		return fmt.Sprintf("%v seg%d @%v", e.Kind, e.Segment, e.At)
	case KindBitrot:
		return fmt.Sprintf("%v agent%d seed=%d @%v", e.Kind, e.Agent, e.Seed, e.At)
	case KindKillMediator, KindRestartMediator, KindDrainMediator:
		return fmt.Sprintf("%v med%d @%v", e.Kind, e.Mediator, e.At)
	case KindDemandSurge:
		return fmt.Sprintf("%v x%.1f @%v", e.Kind, e.Rate, e.At)
	case KindDemandClear:
		return fmt.Sprintf("%v @%v", e.Kind, e.At)
	case KindAgentSlowdown:
		return fmt.Sprintf("%v agent%d +%v @%v", e.Kind, e.Agent, e.Latency, e.At)
	default:
		return fmt.Sprintf("%v agent%d @%v", e.Kind, e.Agent, e.At)
	}
}

// Cluster names the injectable parts of an installation. Crash and
// Restart are callbacks because agent processes are owned by the harness,
// not the network model.
type Cluster struct {
	// Net provides the modeled clock the schedule is walked against.
	Net *memnet.Net
	// Segments are the media that latency/loss/corruption faults target.
	Segments []*memnet.Segment
	// AgentHosts holds each agent's host, index-aligned with the
	// client's agent order.
	AgentHosts []*memnet.Host
	// Crash kills agent i's server process (e.g. agent.Close). Nil
	// disables crash/restart events.
	Crash func(i int) error
	// Restart brings agent i's server process back on the same host and
	// store, with fresh (empty) session state.
	Restart func(i int) error
	// Bitrot flips bytes at rest in agent i's raw store, beneath any
	// integrity envelope, deterministically in seed. Nil disables bitrot
	// events. The harness owns the stores, so it decides which objects
	// and offsets rot.
	Bitrot func(i int, seed int64) error
	// KillMediator crashes mediator replica i in place: every subsequent
	// operation on it fails until RestartMediator. Nil disables mediator
	// fault events.
	KillMediator func(i int) error
	// RestartMediator replaces a killed replica with a fresh, empty one
	// that reconciles its session state from surviving peers.
	RestartMediator func(i int) error
	// DrainMediator gracefully drains replica i, handing its live
	// sessions to peers before it goes away.
	DrainMediator func(i int) error
	// SetDemand scales the harness's offered load by mult (1 restores the
	// baseline). The traffic generator is owned by the harness, so demand
	// surges route through a callback like process faults do. Nil
	// disables demand events.
	SetDemand func(mult float64) error
	// SlowAgent adds d to agent i's per-read service time (0 clears it) —
	// a straggling server rather than a slow medium. Nil disables
	// slowdown events.
	SlowAgent func(i int, d time.Duration) error
}

// Controller applies fault events to a cluster and keeps a log of what it
// did, for failure forensics in soak harnesses.
type Controller struct {
	c    Cluster
	logf func(format string, args ...any)

	mu  sync.Mutex
	log []string
}

// New creates a controller. logf (may be nil) receives one line per
// applied event.
func New(c Cluster, logf func(format string, args ...any)) *Controller {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Controller{c: c, logf: logf}
}

// Log returns the events applied so far, oldest first.
func (ctl *Controller) Log() []string {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	return append([]string(nil), ctl.log...)
}

func (ctl *Controller) record(e Event) {
	line := e.String()
	ctl.mu.Lock()
	ctl.log = append(ctl.log, line)
	ctl.mu.Unlock()
	ctl.logf("faultinject: %s", line)
}

func (ctl *Controller) segment(i int) (*memnet.Segment, error) {
	if i < 0 || i >= len(ctl.c.Segments) {
		return nil, fmt.Errorf("faultinject: no segment %d", i)
	}
	return ctl.c.Segments[i], nil
}

func (ctl *Controller) host(i int) (*memnet.Host, error) {
	if i < 0 || i >= len(ctl.c.AgentHosts) {
		return nil, fmt.Errorf("faultinject: no agent host %d", i)
	}
	return ctl.c.AgentHosts[i], nil
}

// Apply executes one event immediately.
func (ctl *Controller) Apply(e Event) error {
	switch e.Kind {
	case KindCrashAgent:
		if ctl.c.Crash == nil {
			return fmt.Errorf("faultinject: no Crash callback")
		}
		if err := ctl.c.Crash(e.Agent); err != nil {
			return fmt.Errorf("faultinject: crash agent %d: %w", e.Agent, err)
		}
	case KindRestartAgent:
		if ctl.c.Restart == nil {
			return fmt.Errorf("faultinject: no Restart callback")
		}
		if err := ctl.c.Restart(e.Agent); err != nil {
			return fmt.Errorf("faultinject: restart agent %d: %w", e.Agent, err)
		}
	case KindPauseHost, KindResumeHost:
		h, err := ctl.host(e.Agent)
		if err != nil {
			return err
		}
		h.SetPaused(e.Kind == KindPauseHost)
	case KindPartition:
		h, err := ctl.host(e.Agent)
		if err != nil {
			return err
		}
		for _, s := range ctl.c.Segments {
			s.Isolate(h.Name())
		}
	case KindHealPartition:
		for _, s := range ctl.c.Segments {
			s.Heal()
		}
	case KindLatencySpike, KindLatencyClear:
		s, err := ctl.segment(e.Segment)
		if err != nil {
			return err
		}
		if e.Kind == KindLatencySpike {
			s.SetExtraLatency(e.Latency)
		} else {
			s.SetExtraLatency(0)
		}
	case KindLossBurst, KindLossClear:
		s, err := ctl.segment(e.Segment)
		if err != nil {
			return err
		}
		if e.Kind == KindLossBurst {
			s.SetLossRate(e.Rate)
		} else {
			s.SetLossRate(0)
		}
	case KindBitrot:
		if ctl.c.Bitrot == nil {
			return fmt.Errorf("faultinject: no Bitrot callback")
		}
		if err := ctl.c.Bitrot(e.Agent, e.Seed); err != nil {
			return fmt.Errorf("faultinject: bitrot agent %d: %w", e.Agent, err)
		}
	case KindCorruptBurst, KindCorruptClear:
		s, err := ctl.segment(e.Segment)
		if err != nil {
			return err
		}
		if e.Kind == KindCorruptBurst {
			s.SetCorruptRate(e.Rate)
		} else {
			s.SetCorruptRate(0)
		}
	case KindKillMediator:
		if ctl.c.KillMediator == nil {
			return fmt.Errorf("faultinject: no KillMediator callback")
		}
		if err := ctl.c.KillMediator(e.Mediator); err != nil {
			return fmt.Errorf("faultinject: kill mediator %d: %w", e.Mediator, err)
		}
	case KindRestartMediator:
		if ctl.c.RestartMediator == nil {
			return fmt.Errorf("faultinject: no RestartMediator callback")
		}
		if err := ctl.c.RestartMediator(e.Mediator); err != nil {
			return fmt.Errorf("faultinject: restart mediator %d: %w", e.Mediator, err)
		}
	case KindDrainMediator:
		if ctl.c.DrainMediator == nil {
			return fmt.Errorf("faultinject: no DrainMediator callback")
		}
		if err := ctl.c.DrainMediator(e.Mediator); err != nil {
			return fmt.Errorf("faultinject: drain mediator %d: %w", e.Mediator, err)
		}
	case KindDemandSurge, KindDemandClear:
		if ctl.c.SetDemand == nil {
			return fmt.Errorf("faultinject: no SetDemand callback")
		}
		mult := e.Rate
		if e.Kind == KindDemandClear {
			mult = 1
		}
		if err := ctl.c.SetDemand(mult); err != nil {
			return fmt.Errorf("faultinject: set demand x%.1f: %w", mult, err)
		}
	case KindAgentSlowdown, KindAgentSlowClear:
		if ctl.c.SlowAgent == nil {
			return fmt.Errorf("faultinject: no SlowAgent callback")
		}
		d := e.Latency
		if e.Kind == KindAgentSlowClear {
			d = 0
		}
		if err := ctl.c.SlowAgent(e.Agent, d); err != nil {
			return fmt.Errorf("faultinject: slow agent %d by %v: %w", e.Agent, d, err)
		}
	default:
		return fmt.Errorf("faultinject: unknown event kind %v", e.Kind)
	}
	ctl.record(e)
	return nil
}

// Run walks the schedule in modeled time: it sleeps until each event's
// instant (relative to the modeled clock at the call) and applies it.
// Closing stop (may be nil) abandons the remaining events; Run then heals
// everything it can so the installation is left fault-free. The first
// apply error aborts the walk (after healing) and is returned.
func (ctl *Controller) Run(schedule []Event, stop <-chan struct{}) error {
	evs := append([]Event(nil), schedule...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	start := ctl.c.Net.Now()
	var firstErr error
	for _, e := range evs {
		for {
			if stopped(stop) {
				ctl.HealAll()
				return firstErr
			}
			now := ctl.c.Net.Now() - start
			if now >= e.At {
				break
			}
			d := e.At - now
			if d > 5*time.Millisecond {
				d = 5 * time.Millisecond // stay responsive to stop
			}
			ctl.c.Net.Sleep(d)
		}
		if err := ctl.Apply(e); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		ctl.HealAll()
	}
	return firstErr
}

func stopped(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// HealAll clears every medium fault and partition and resumes every
// paused host. It does not restart crashed agents (the harness owns
// process lifecycle).
func (ctl *Controller) HealAll() {
	for _, s := range ctl.c.Segments {
		s.Heal()
		s.SetLossRate(0)
		s.SetExtraLatency(0)
		s.SetCorruptRate(0)
	}
	for _, h := range ctl.c.AgentHosts {
		h.SetPaused(false)
	}
	if ctl.c.SetDemand != nil {
		ctl.c.SetDemand(1)
	}
	if ctl.c.SlowAgent != nil {
		for i := range ctl.c.AgentHosts {
			ctl.c.SlowAgent(i, 0)
		}
	}
}

// ScheduleOpts shapes RandomSchedule.
type ScheduleOpts struct {
	// Agents and Segments size the target space (required, >= 1 each).
	Agents   int
	Segments int
	// Mediators sizes the mediator replica tier; required (>= 1) only
	// when Kinds includes KindKillMediator.
	Mediators int
	// Duration is the total schedule length (required).
	Duration time.Duration
	// MinFault/MaxFault bound each fault window (defaults Duration/20
	// and Duration/8).
	MinFault time.Duration
	MaxFault time.Duration
	// Gap is the fault-free recovery window between faults (default
	// MaxFault). It must comfortably exceed the health monitor's probe
	// interval for automatic re-admission to finish between windows.
	Gap time.Duration
	// Kinds restricts the fault families used (default: crash,
	// partition, pause, latency, loss, corrupt).
	Kinds []Kind
}

// RandomSchedule builds a deterministic, seeded schedule of serialized
// fault windows: each window applies one fault and heals it before the
// next begins, so at most one agent is ever impaired — the regime in
// which computed-copy redundancy guarantees availability. Every requested
// fault family occurs at least once if the duration allows.
func RandomSchedule(seed int64, o ScheduleOpts) []Event {
	if o.MinFault == 0 {
		o.MinFault = o.Duration / 20
	}
	if o.MaxFault == 0 {
		o.MaxFault = o.Duration / 8
	}
	if o.MaxFault < o.MinFault {
		o.MaxFault = o.MinFault
	}
	if o.Gap == 0 {
		o.Gap = o.MaxFault
	}
	kinds := o.Kinds
	if kinds == nil {
		kinds = []Kind{KindCrashAgent, KindPartition, KindPauseHost,
			KindLatencySpike, KindLossBurst, KindCorruptBurst}
	}
	rng := rand.New(rand.NewSource(seed))
	var evs []Event
	t := o.Gap // let traffic establish itself first
	for i := 0; ; i++ {
		window := o.MinFault
		if o.MaxFault > o.MinFault {
			window += time.Duration(rng.Int63n(int64(o.MaxFault - o.MinFault)))
		}
		if t+window+o.Gap > o.Duration {
			break
		}
		// Round-robin through the families first so each occurs at
		// least once, then draw at random.
		kind := kinds[i%len(kinds)]
		if i >= len(kinds) {
			kind = kinds[rng.Intn(len(kinds))]
		}
		agent := rng.Intn(o.Agents)
		seg := rng.Intn(o.Segments)
		switch kind {
		case KindCrashAgent:
			evs = append(evs,
				Event{At: t, Kind: KindCrashAgent, Agent: agent},
				Event{At: t + window, Kind: KindRestartAgent, Agent: agent})
		case KindPartition:
			evs = append(evs,
				Event{At: t, Kind: KindPartition, Agent: agent},
				Event{At: t + window, Kind: KindHealPartition, Agent: agent})
		case KindPauseHost:
			evs = append(evs,
				Event{At: t, Kind: KindPauseHost, Agent: agent},
				Event{At: t + window, Kind: KindResumeHost, Agent: agent})
		case KindLatencySpike:
			lat := time.Duration(1+rng.Int63n(8)) * time.Millisecond
			evs = append(evs,
				Event{At: t, Kind: KindLatencySpike, Segment: seg, Latency: lat},
				Event{At: t + window, Kind: KindLatencyClear, Segment: seg})
		case KindLossBurst:
			evs = append(evs,
				Event{At: t, Kind: KindLossBurst, Segment: seg, Rate: 0.05 + 0.20*rng.Float64()},
				Event{At: t + window, Kind: KindLossClear, Segment: seg})
		case KindCorruptBurst:
			evs = append(evs,
				Event{At: t, Kind: KindCorruptBurst, Segment: seg, Rate: 0.02 + 0.08*rng.Float64()},
				Event{At: t + window, Kind: KindCorruptClear, Segment: seg})
		case KindBitrot:
			// One-shot: at-rest damage has no healing counterpart here;
			// the client's read-repair and scrubber are the cure. The
			// window passes fault-free, giving them room to run.
			evs = append(evs, Event{At: t, Kind: KindBitrot, Agent: agent, Seed: rng.Int63()})
		case KindKillMediator:
			med := 0
			if o.Mediators > 0 {
				med = rng.Intn(o.Mediators)
			}
			evs = append(evs,
				Event{At: t, Kind: KindKillMediator, Mediator: med},
				Event{At: t + window, Kind: KindRestartMediator, Mediator: med})
		case KindDemandSurge:
			evs = append(evs,
				Event{At: t, Kind: KindDemandSurge, Rate: 2 + rng.Float64()},
				Event{At: t + window, Kind: KindDemandClear})
		case KindAgentSlowdown:
			lat := time.Duration(5+rng.Int63n(20)) * time.Millisecond
			evs = append(evs,
				Event{At: t, Kind: KindAgentSlowdown, Agent: agent, Latency: lat},
				Event{At: t + window, Kind: KindAgentSlowClear, Agent: agent})
		}
		t += window + o.Gap
	}
	return evs
}
