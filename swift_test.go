package swift_test

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"swift"
	"swift/internal/transport/udpnet"
)

// startCluster boots n in-process storage agents over real UDP loopback
// and dials a client — the full deployment stack.
func startCluster(t *testing.T, n int, cfg swift.Config) *swift.FS {
	t.Helper()
	host := udpnet.NewHost("127.0.0.1")
	var addrs []string
	for i := 0; i < n; i++ {
		a, err := swift.StartAgent(host, swift.NewMemStore(), swift.AgentConfig{Port: "0"})
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
		t.Cleanup(func() { a.Close() })
		addrs = append(addrs, a.Addr())
	}
	cfg.Host = host
	cfg.Agents = addrs
	fs, err := swift.Dial(cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

func TestFacadeOverUDP(t *testing.T) {
	fs := startCluster(t, 3, swift.Config{StripeUnit: 8 * 1024})

	data := make([]byte, 300_000)
	rand.New(rand.NewSource(1)).Read(data)

	f, err := fs.Create("facade")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	size, err := fs.Stat("facade")
	if err != nil || size != int64(len(data)) {
		t.Fatalf("stat = %d, %v", size, err)
	}

	g, err := fs.Open("facade")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer g.Close()
	back, err := io.ReadAll(g)
	if err != nil {
		t.Fatalf("readall: %v", err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("round trip mismatch")
	}

	names, err := fs.List()
	if err != nil || len(names) != 1 || names[0] != "facade" {
		t.Fatalf("list = %v, %v", names, err)
	}
	if err := fs.Remove("facade"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := fs.Stat("facade"); err == nil {
		t.Fatal("stat after remove succeeded")
	}
}

func TestFacadeParityDegradedOverUDP(t *testing.T) {
	host := udpnet.NewHost("127.0.0.1")
	agents := make([]*swift.Agent, 4)
	var addrs []string
	for i := range agents {
		a, err := swift.StartAgent(host, swift.NewMemStore(), swift.AgentConfig{Port: "0"})
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
		addrs = append(addrs, a.Addr())
	}
	defer func() {
		for _, a := range agents {
			if a != nil {
				a.Close()
			}
		}
	}()
	fs, err := swift.Dial(swift.Config{
		Host: host, Agents: addrs,
		StripeUnit: 4 * 1024, Parity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	data := make([]byte, 150_000)
	rand.New(rand.NewSource(2)).Read(data)
	f, err := fs.Create("p")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	f.Close()

	agents[1].Close()
	agents[1] = nil
	fs.MarkDown(1, true)

	g, err := fs.Open("p")
	if err != nil {
		t.Fatalf("degraded open: %v", err)
	}
	defer g.Close()
	back := make([]byte, len(data))
	if _, err := g.ReadAt(back, 0); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("degraded read mismatch")
	}
}

func TestSeekSemantics(t *testing.T) {
	fs := startCluster(t, 2, swift.Config{StripeUnit: 1024})
	f, err := fs.Create("seek")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "hello, ")
	fmt.Fprintf(f, "world")
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	all, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(all) != "hello, world" {
		t.Fatalf("got %q", all)
	}
	if pos, _ := f.Seek(-5, io.SeekEnd); pos != 7 {
		t.Fatalf("seek end pos = %d", pos)
	}
	tail, _ := io.ReadAll(f)
	if string(tail) != "world" {
		t.Fatalf("tail = %q", tail)
	}
}

func TestFacadeRSDoubleFailureOverUDP(t *testing.T) {
	host := udpnet.NewHost("127.0.0.1")
	agents := make([]*swift.Agent, 5)
	var addrs []string
	for i := range agents {
		a, err := swift.StartAgent(host, swift.NewMemStore(), swift.AgentConfig{Port: "0"})
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
		addrs = append(addrs, a.Addr())
	}
	defer func() {
		for _, a := range agents {
			if a != nil {
				a.Close()
			}
		}
	}()
	fs, err := swift.Dial(swift.Config{
		Host: host, Agents: addrs,
		StripeUnit: 4 * 1024, DataShards: 3, ParityShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if s := fs.Scheme(); s != "3+2" {
		t.Fatalf("scheme = %q, want 3+2", s)
	}

	data := make([]byte, 150_000)
	rand.New(rand.NewSource(3)).Read(data)
	f, err := fs.Create("rs")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Two agents die; the 3+2 scheme still serves exact bytes.
	for _, i := range []int{1, 3} {
		agents[i].Close()
		agents[i] = nil
		fs.MarkDown(i, true)
	}
	g, err := fs.Open("rs")
	if err != nil {
		t.Fatalf("double-degraded open: %v", err)
	}
	defer g.Close()
	back := make([]byte, len(data))
	if _, err := g.ReadAt(back, 0); err != nil {
		t.Fatalf("double-degraded read: %v", err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("double-degraded read mismatch")
	}
}

func TestFacadeShardMismatchRejected(t *testing.T) {
	host := udpnet.NewHost("127.0.0.1")
	_, err := swift.Dial(swift.Config{
		Host:   host,
		Agents: []string{"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"},
		// 3 agents cannot be 3 data + 2 parity.
		DataShards: 3, ParityShards: 2,
	})
	if err == nil {
		t.Fatal("shard/agent mismatch accepted")
	}
}
