package swift_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestEndToEndBinaries builds swiftd and swiftctl and exercises the whole
// deployment path over real UDP with file-backed stores: three daemons,
// put/stat/ls/get/status/rm, byte-for-byte verification. Skipped with
// -short.
func TestEndToEndBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary end-to-end test")
	}
	dir := t.TempDir()
	swiftd := filepath.Join(dir, "swiftd")
	swiftctl := filepath.Join(dir, "swiftctl")
	for bin, pkg := range map[string]string{swiftd: "./cmd/swiftd", swiftctl: "./cmd/swiftctl"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	// Start three agents with file-backed stores on free ports.
	var addrs []string
	for i := 0; i < 3; i++ {
		port := freePort(t)
		store := filepath.Join(dir, fmt.Sprintf("store%d", i))
		cmd := exec.Command(swiftd, "-port", port, "-dir", store)
		if err := cmd.Start(); err != nil {
			t.Fatalf("start swiftd %d: %v", i, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		addrs = append(addrs, "127.0.0.1:"+port)
	}
	agents := strings.Join(addrs, ",")
	waitForAgents(t, swiftctl, agents)

	run := func(args ...string) string {
		t.Helper()
		full := append([]string{"-agents", agents}, args...)
		out, err := exec.Command(swiftctl, full...).CombinedOutput()
		if err != nil {
			t.Fatalf("swiftctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// Put a file, verify stat/ls, get it back, compare.
	payload := make([]byte, 500_000)
	rand.New(rand.NewSource(1)).Read(payload)
	local := filepath.Join(dir, "payload.bin")
	if err := os.WriteFile(local, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	run("put", local, "e2e-object")
	if out := run("stat", "e2e-object"); !strings.Contains(out, "500000") {
		t.Fatalf("stat output: %s", out)
	}
	if out := run("ls"); !strings.Contains(out, "e2e-object") {
		t.Fatalf("ls output: %s", out)
	}
	back := filepath.Join(dir, "back.bin")
	run("get", "e2e-object", back)
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("end-to-end payload mismatch")
	}

	// The fragments really are on disk, striped across the stores.
	for i := 0; i < 3; i++ {
		ents, err := os.ReadDir(filepath.Join(dir, fmt.Sprintf("store%d", i)))
		if err != nil || len(ents) == 0 {
			t.Fatalf("agent %d store empty (%v)", i, err)
		}
	}

	// Status shows three live agents holding bytes.
	status := run("status")
	if strings.Count(status, "up") != 3 || strings.Contains(status, "DOWN") {
		t.Fatalf("status output: %s", status)
	}

	run("rm", "e2e-object")
	if out := run("ls"); strings.Contains(out, "e2e-object") {
		t.Fatalf("object survived rm: %s", out)
	}
}

// waitForAgents polls status until all agents respond or a deadline hits.
func waitForAgents(t *testing.T, swiftctl, agents string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		out, err := exec.Command(swiftctl, "-agents", agents, "status").CombinedOutput()
		if err == nil && strings.Count(string(out), "up") == 3 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("agents never came up")
}

// freePort grabs an available UDP port.
func freePort(t *testing.T) string {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, port, _ := net.SplitHostPort(conn.LocalAddr().String())
	return port
}
