package swift_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swift"
	"swift/internal/faultinject"
	"swift/internal/integrity"
	"swift/internal/mediator"
	"swift/internal/medrpc"
	"swift/internal/obs"
	"swift/internal/store"
	"swift/internal/transport/memnet"
)

// TestChaosSoak is the tier-1 robustness proof: a parity-protected
// installation absorbs a deterministic, seeded schedule of serialized
// faults — agent crashes with restarts, partitions with heals, latency
// spikes, loss bursts, and at-rest bitrot beneath the integrity
// envelope — while continuous read/write traffic flows, and
//
//   - every read returns exactly the bytes the in-memory mirror predicts:
//     corrupt blocks are detected by the envelope and never served;
//   - no operation errors, because at most one agent is impaired at a
//     time and computed-copy redundancy masks a single failure;
//   - every crashed or partitioned agent is re-admitted automatically by
//     the background health monitor (observed via FS.Health()), with its
//     fragments rebuilt from parity — the test never calls a manual
//     recovery entry point;
//   - seeded bitrot is fully healed: after a scrub-and-repair pass, a
//     verification scrub finds zero corruptions and zero mismatches.
func TestChaosSoak(t *testing.T) {
	const (
		nAgents = 4
		objSize = 128 * 1024
		nObjs   = 3
	)
	n := memnet.New(1)
	seg := n.NewSegment("lab", memnet.SegmentConfig{
		BandwidthBps:  1e10, // fast medium: the soak exercises faults, not timing
		FrameOverhead: 46,
		Seed:          3,
	})

	agentCfg := swift.AgentConfig{
		ResendCheck: 5 * time.Millisecond,
		ResendAfter: 10 * time.Millisecond,
	}
	// Each agent keeps its fragments in the integrity envelope over a raw
	// in-memory store; bitrot events flip bytes in the raw image, beneath
	// the checksums, exactly like decaying media.
	const blockSize = 4096
	agents := make([]*swift.Agent, nAgents)
	hosts := make([]*memnet.Host, nAgents)
	raw := make([]*store.Mem, nAgents)
	sts := make([]store.Store, nAgents)
	addrs := make([]string, nAgents)
	for i := 0; i < nAgents; i++ {
		hosts[i] = n.MustHost(fmt.Sprintf("agent%d", i), memnet.HostConfig{}, seg)
		raw[i] = store.NewMem()
		sts[i] = integrity.NewStore(raw[i], blockSize)
		a, err := swift.StartAgent(hosts[i], sts[i], agentCfg)
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
		agents[i] = a
		addrs[i] = a.Addr()
	}
	defer func() {
		for _, a := range agents {
			if a != nil {
				a.Close()
			}
		}
	}()

	clientHost := n.MustHost("client", memnet.HostConfig{}, seg)
	fs, err := swift.Dial(swift.Config{
		Host:       clientHost,
		Agents:     addrs,
		StripeUnit: 4096,
		Parity:     true,
		// Small no-progress budget (20 × 15ms ≈ 300ms) so failure
		// attribution outpaces the fault schedule, and a fast monitor so
		// re-admission fits inside the recovery gaps.
		RetryTimeout:   15 * time.Millisecond,
		MaxRetries:     20,
		HealthInterval: 25 * time.Millisecond,
		AutoRebuild:    true,
		// Background scrubbing heals bitrot between fault windows, so
		// damage cannot accumulate into a same-row double corruption.
		ScrubInterval: 100 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer fs.Close()

	// Pre-fill the object set and its in-memory mirrors.
	rng := rand.New(rand.NewSource(9))
	files := make([]*swift.File, nObjs)
	mirrors := make([][]byte, nObjs)
	for i := range files {
		f, err := fs.Create(fmt.Sprintf("obj%d", i))
		if err != nil {
			t.Fatalf("create obj%d: %v", i, err)
		}
		defer f.Close()
		m := make([]byte, objSize)
		rng.Read(m)
		if _, err := f.WriteAt(m, 0); err != nil {
			t.Fatalf("prefill obj%d: %v", i, err)
		}
		files[i], mirrors[i] = f, m
	}

	// The fault schedule: serialized windows covering all four required
	// families, deterministic in the seed. Crash and restart route
	// through callbacks that own the agent processes.
	ctl := faultinject.New(faultinject.Cluster{
		Net:        n,
		Segments:   []*memnet.Segment{seg},
		AgentHosts: hosts,
		Crash: func(i int) error {
			if agents[i] == nil {
				return nil
			}
			agents[i].Close()
			agents[i] = nil
			return nil
		},
		Restart: func(i int) error {
			if agents[i] != nil {
				return nil
			}
			a, err := swift.StartAgent(hosts[i], sts[i], agentCfg)
			if err != nil {
				return err
			}
			agents[i] = a
			return nil
		},
		// Bitrot: flip a few bytes of one object's raw fragment image on
		// agent i — beneath the integrity envelope, like decaying media.
		// Deterministic in the event seed.
		Bitrot: func(i int, seed int64) error {
			r := rand.New(rand.NewSource(seed))
			names, err := raw[i].List()
			if err != nil || len(names) == 0 {
				return err
			}
			obj, err := raw[i].Open(names[r.Intn(len(names))], false)
			if err != nil {
				return err
			}
			defer obj.Close()
			size, err := obj.Size()
			if err != nil || size == 0 {
				return err
			}
			flips := 1 + r.Intn(3)
			b := make([]byte, 1)
			for k := 0; k < flips; k++ {
				off := r.Int63n(size)
				if _, err := obj.ReadAt(b, off); err != nil {
					return err
				}
				b[0] ^= byte(1 + r.Intn(255))
				if _, err := obj.WriteAt(b, off); err != nil {
					return err
				}
			}
			return nil
		},
	}, t.Logf)
	sched := faultinject.RandomSchedule(11, faultinject.ScheduleOpts{
		Agents:   nAgents,
		Segments: 1,
		Duration: 4200 * time.Millisecond,
		MinFault: 150 * time.Millisecond,
		MaxFault: 300 * time.Millisecond,
		Gap:      400 * time.Millisecond,
		Kinds: []faultinject.Kind{
			faultinject.KindCrashAgent,
			faultinject.KindPartition,
			faultinject.KindLatencySpike,
			faultinject.KindLossBurst,
			faultinject.KindBitrot,
		},
	})
	if len(sched) < 8 {
		t.Fatalf("schedule too short to cover all families: %d events", len(sched))
	}

	chaosErr := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		chaosErr <- ctl.Run(sched, nil)
	}()

	// Continuous traffic until the schedule completes. The schedule is
	// serialized (at most one agent impaired at any instant), so with
	// parity every operation must succeed and every read must match the
	// mirror exactly.
	ops, opErrs := 0, 0
	buf := make([]byte, 16*1024)
soak:
	for {
		select {
		case <-done:
			break soak
		default:
		}
		obj := rng.Intn(nObjs)
		off := rng.Intn(objSize - len(buf))
		sz := 1 + rng.Intn(len(buf))
		ops++
		if rng.Float64() < 0.5 {
			got := buf[:sz]
			if _, err := files[obj].ReadAt(got, int64(off)); err != nil {
				opErrs++
				t.Errorf("op %d: read obj%d[%d:+%d]: %v", ops, obj, off, sz, err)
				continue
			}
			if !bytes.Equal(got, mirrors[obj][off:off+sz]) {
				t.Fatalf("op %d: read obj%d[%d:+%d] returned wrong bytes", ops, obj, off, sz)
			}
		} else {
			rng.Read(buf[:sz])
			if _, err := files[obj].WriteAt(buf[:sz], int64(off)); err != nil {
				opErrs++
				t.Errorf("op %d: write obj%d[%d:+%d]: %v", ops, obj, off, sz, err)
				continue
			}
			copy(mirrors[obj][off:off+sz], buf[:sz])
		}
	}
	if err := <-chaosErr; err != nil {
		t.Fatalf("chaos schedule: %v", err)
	}
	if opErrs != 0 {
		t.Fatalf("%d of %d operations failed with at most one agent impaired", opErrs, ops)
	}
	if ops < 20 {
		t.Fatalf("soak performed only %d operations", ops)
	}

	// All five fault families must actually have fired.
	applied := strings.Join(ctl.Log(), "\n")
	for _, family := range []string{"crash-agent", "partition", "latency-spike", "loss-burst", "bitrot"} {
		if !strings.Contains(applied, family) {
			t.Fatalf("fault family %s never applied:\n%s", family, applied)
		}
	}

	// Automatic re-admission: the background monitor must return every
	// agent to healthy — sessions reopened, fragments rebuilt — with no
	// manual intervention.
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy := 0
		for _, h := range fs.Health() {
			if h.State == swift.StateHealthy {
				healthy++
			}
		}
		if healthy == nAgents {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("agents never all re-admitted: %+v", fs.Health())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Health says every agent answers probes, but per-file sessions to a
	// restarted agent are re-established asynchronously. A scrub pass
	// only counts a row when every session is live and every agent
	// healthy, so a clean (skip-free, finding-free) pass over the open
	// set proves the stripe is whole before the drill seeds new damage.
	deadline = time.Now().Add(5 * time.Second)
	for {
		rep := fs.ScrubOpen()
		if rep.Clean() {
			break
		}
		if time.Now().After(deadline) {
			t.Logf("health at timeout: %+v", fs.Health())
			t.Fatalf("stripe never quiesced after the soak: %s", rep)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Deterministic bitrot drill. Flip one byte in a data unit of every
	// agent's fragment of obj0 — agent i at stripe row i, and with four
	// agents ParityAgent(i) = 3-i is never i, so each flip lands in data —
	// plus one byte in a parity unit (agent 3 holds row 4's parity). All
	// five flips sit in distinct rows, so single-parity repair covers
	// every one.
	flip := func(agent int, localOff int64) {
		b := localOff / blockSize
		phys := b*(blockSize+integrity.HeaderSize) + integrity.HeaderSize + localOff%blockSize
		obj, err := raw[agent].Open("obj0", false)
		if err != nil {
			t.Fatalf("drill: open raw obj0 on agent %d: %v", agent, err)
		}
		defer obj.Close()
		var one [1]byte
		if _, err := obj.ReadAt(one[:], phys); err != nil {
			t.Fatalf("drill: read raw byte on agent %d: %v", agent, err)
		}
		one[0] ^= 0xA5
		if _, err := obj.WriteAt(one[:], phys); err != nil {
			t.Fatalf("drill: flip raw byte on agent %d: %v", agent, err)
		}
	}
	before := fs.Metrics()
	for i := 0; i < nAgents; i++ {
		flip(i, int64(i)*4096+137)
	}
	flip(3, 4*4096+512) // row 4's parity unit lives on agent 3

	// The rotten bytes must never be served: the envelope detects them
	// and read-repair reconstructs from parity on the fly.
	got := make([]byte, objSize)
	if _, err := files[0].ReadAt(got, 0); err != nil {
		t.Fatalf("bitrot drill read: %v", err)
	}
	if !bytes.Equal(got, mirrors[0]) {
		t.Fatal("bitrot drill read returned corrupt bytes")
	}
	// Scrub-and-repair heals what reads do not touch (the parity unit);
	// the verification pass must then be spotless.
	if _, err := files[0].Scrub(swift.ScrubOptions{Repair: true}); err != nil {
		t.Fatalf("scrub repair: %v", err)
	}
	rep, err := files[0].Scrub(swift.ScrubOptions{})
	if err != nil {
		t.Fatalf("verification scrub: %v", err)
	}
	if rep.Corruptions != 0 || rep.ParityMismatches != 0 || rep.Unrepairable != 0 {
		t.Fatalf("verification scrub not clean: %s", rep)
	}
	delta := fs.Metrics().Sub(before)
	if delta.Corruptions == 0 {
		t.Fatal("drill: no corruption detected (flips were served or missed)")
	}
	if delta.Repairs == 0 {
		t.Fatal("drill: no unit repaired")
	}
	if m := fs.Metrics(); m.Unrepairable != 0 {
		t.Fatalf("unrepairable corruption events: %d", m.Unrepairable)
	}

	// Final end-to-end audit: every object reads back exactly as the
	// mirror predicts, through the healthy (non-degraded) path.
	for i, f := range files {
		got := make([]byte, objSize)
		if _, err := f.ReadAt(got, 0); err != nil {
			t.Fatalf("final read obj%d: %v", i, err)
		}
		if !bytes.Equal(got, mirrors[i]) {
			t.Fatalf("final read obj%d does not match mirror", i)
		}
	}
	t.Logf("soak: %d ops, %d faults applied, %d corruptions detected, %d units repaired, all agents re-admitted",
		ops, len(ctl.Log()), fs.Metrics().Corruptions, fs.Metrics().Repairs)

	// Sixth drill: double failure under Reed-Solomon. A fresh five-agent
	// 3+2 volume loses TWO agents mid-traffic — damage beyond the
	// single-XOR ceiling — and must keep serving exact bytes.
	chaosDoubleKillK2(t)

	// Seventh drill: mediator federation failover. The active mediator
	// replica is killed (and later drained) mid-traffic under 3+2; the
	// client's lease must survive on a surviving replica with zero
	// operation errors and convergent reservation accounting.
	chaosMediatorFailover(t)

	// Eighth drill: distributed tracing under faults. Injected agent
	// latency (a read timeout) and at-rest bitrot (a read repair) must
	// both surface as annotated spans inside assembled cross-layer span
	// trees — client op → mediator admit → per-agent service →
	// resend/repair children, with correct parent/child IDs and
	// durations.
	chaosTraceSpans(t)

	// Ninth drill: cooperative overload control. 2.5× overdemand plus one
	// straggling agent must be absorbed by pushback, hedged reads and the
	// retry budget — goodput within 15% of degraded capacity, every
	// served byte exact, and zero failure-domain lifecycle flaps.
	chaosOverload(t)

	// Tenth drill: cache coherence under mediator faults. Two clients
	// share a 3+2 object — one writes mid-stream through write-behind
	// while the other serves from its block cache — as the mediator
	// replica anchoring the coherence channel is killed and restarted.
	// Reads are never stale past an invalidation, dirty data survives a
	// client losing its lease (crash-flush), and zero operations fail.
	chaosCacheCoherence(t)
}

// chaosDoubleKillK2 is TestChaosSoak's sixth drill. It boots a
// five-agent 3+2 Reed-Solomon volume, streams mirrored traffic, and
// kills two agents at staggered points while operations continue:
//
//   - zero operation errors — k=2 masks both failures, reads and writes
//     run degraded through matrix reconstruction;
//   - every degraded read is byte-identical to the in-memory mirror;
//   - both agents restart and the background monitor re-admits them
//     with fragments rebuilt from the surviving three — no manual
//     recovery call;
//   - a verification scrub over the open set comes back spotless and
//     the unrepairable counter never moves.
func chaosDoubleKillK2(t *testing.T) {
	const (
		nAgents = 5
		objSize = 96 * 1024
		nObjs   = 3
		nOps    = 150
	)
	n := memnet.New(2)
	seg := n.NewSegment("rs-lab", memnet.SegmentConfig{
		BandwidthBps:  1e10,
		FrameOverhead: 46,
		Seed:          7,
	})
	agentCfg := swift.AgentConfig{
		ResendCheck: 5 * time.Millisecond,
		ResendAfter: 10 * time.Millisecond,
	}
	const blockSize = 4096
	agents := make([]*swift.Agent, nAgents)
	hosts := make([]*memnet.Host, nAgents)
	sts := make([]store.Store, nAgents)
	addrs := make([]string, nAgents)
	for i := 0; i < nAgents; i++ {
		hosts[i] = n.MustHost(fmt.Sprintf("rs-agent%d", i), memnet.HostConfig{}, seg)
		sts[i] = integrity.NewStore(store.NewMem(), blockSize)
		a, err := swift.StartAgent(hosts[i], sts[i], agentCfg)
		if err != nil {
			t.Fatalf("drill6: agent %d: %v", i, err)
		}
		agents[i] = a
		addrs[i] = a.Addr()
	}
	defer func() {
		for _, a := range agents {
			if a != nil {
				a.Close()
			}
		}
	}()

	clientHost := n.MustHost("rs-client", memnet.HostConfig{}, seg)
	fs, err := swift.Dial(swift.Config{
		Host:           clientHost,
		Agents:         addrs,
		StripeUnit:     4096,
		DataShards:     3,
		ParityShards:   2,
		RetryTimeout:   15 * time.Millisecond,
		MaxRetries:     20,
		HealthInterval: 25 * time.Millisecond,
		AutoRebuild:    true,
		ScrubInterval:  100 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("drill6: dial: %v", err)
	}
	defer fs.Close()
	if got := fs.Scheme(); got != "3+2" {
		t.Fatalf("drill6: scheme = %q, want 3+2", got)
	}

	rng := rand.New(rand.NewSource(17))
	files := make([]*swift.File, nObjs)
	mirrors := make([][]byte, nObjs)
	for i := range files {
		f, err := fs.Create(fmt.Sprintf("rs-obj%d", i))
		if err != nil {
			t.Fatalf("drill6: create rs-obj%d: %v", i, err)
		}
		defer f.Close()
		m := make([]byte, objSize)
		rng.Read(m)
		if _, err := f.WriteAt(m, 0); err != nil {
			t.Fatalf("drill6: prefill rs-obj%d: %v", i, err)
		}
		files[i], mirrors[i] = f, m
	}

	// Traffic with two staggered kills. Both victims stay down for the
	// back half of the loop, so reads and writes run doubly degraded.
	victims := []int{1, 3}
	ops, opErrs := 0, 0
	buf := make([]byte, 16*1024)
	for ops < nOps {
		switch ops {
		case nOps / 3:
			t.Logf("drill6: killing agent %d mid-traffic", victims[0])
			agents[victims[0]].Close()
			agents[victims[0]] = nil
		case nOps / 2:
			t.Logf("drill6: killing agent %d mid-traffic", victims[1])
			agents[victims[1]].Close()
			agents[victims[1]] = nil
		}
		obj := rng.Intn(nObjs)
		off := rng.Intn(objSize - len(buf))
		sz := 1 + rng.Intn(len(buf))
		ops++
		if rng.Float64() < 0.5 {
			got := buf[:sz]
			if _, err := files[obj].ReadAt(got, int64(off)); err != nil {
				opErrs++
				t.Errorf("drill6 op %d: read rs-obj%d[%d:+%d]: %v", ops, obj, off, sz, err)
				continue
			}
			if !bytes.Equal(got, mirrors[obj][off:off+sz]) {
				t.Fatalf("drill6 op %d: read rs-obj%d[%d:+%d] returned wrong bytes", ops, obj, off, sz)
			}
		} else {
			rng.Read(buf[:sz])
			if _, err := files[obj].WriteAt(buf[:sz], int64(off)); err != nil {
				opErrs++
				t.Errorf("drill6 op %d: write rs-obj%d[%d:+%d]: %v", ops, obj, off, sz, err)
				continue
			}
			copy(mirrors[obj][off:off+sz], buf[:sz])
		}
	}
	if opErrs != 0 {
		t.Fatalf("drill6: %d of %d operations failed with two agents down under k=2", opErrs, ops)
	}

	// Full doubly-degraded audit before recovery: every object must read
	// back exactly through three survivors and matrix reconstruction.
	for i, f := range files {
		got := make([]byte, objSize)
		if _, err := f.ReadAt(got, 0); err != nil {
			t.Fatalf("drill6: degraded read rs-obj%d: %v", i, err)
		}
		if !bytes.Equal(got, mirrors[i]) {
			t.Fatalf("drill6: degraded read rs-obj%d does not match mirror", i)
		}
	}

	// Restart both victims; the monitor must re-admit them and
	// AutoRebuild must reconstruct their stale fragments from the
	// survivors — the test never calls a manual recovery entry point.
	for _, v := range victims {
		a, err := swift.StartAgent(hosts[v], sts[v], agentCfg)
		if err != nil {
			t.Fatalf("drill6: restart agent %d: %v", v, err)
		}
		agents[v] = a
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy := 0
		for _, h := range fs.Health() {
			if h.State == swift.StateHealthy {
				healthy++
			}
		}
		if healthy == nAgents {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drill6: agents never all re-admitted: %+v", fs.Health())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Spotless verification scrub after readmit: rebuilt fragments,
	// fresh parity, nothing corrupt, nothing unrepairable.
	deadline = time.Now().Add(10 * time.Second)
	for {
		rep := fs.ScrubOpen()
		if rep.Clean() {
			break
		}
		if time.Now().After(deadline) {
			t.Logf("drill6: health at timeout: %+v", fs.Health())
			t.Fatalf("drill6: stripe never quiesced after double kill: %s", rep)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if m := fs.Metrics(); m.Unrepairable != 0 {
		t.Fatalf("drill6: unrepairable corruption events: %d", m.Unrepairable)
	}

	// Final audit through the healthy path.
	for i, f := range files {
		got := make([]byte, objSize)
		if _, err := f.ReadAt(got, 0); err != nil {
			t.Fatalf("drill6: final read rs-obj%d: %v", i, err)
		}
		if !bytes.Equal(got, mirrors[i]) {
			t.Fatalf("drill6: final read rs-obj%d does not match mirror", i)
		}
	}
	t.Logf("drill6: %d ops with two agents killed under 3+2, zero errors, rebuilt and spotless", ops)
}

// chaosMediatorFailover is TestChaosSoak's seventh drill: the federated
// mediator tier under fire. A five-agent 3+2 volume is admitted through a
// three-replica mediator federation; the session's home replica is killed
// mid-traffic, later restarted (reconciling from peers), and finally the
// new home is gracefully drained — all through the faultinject mediator
// fault family — while continuous mirrored traffic flows:
//
//   - zero operation errors: the data path never depends on a live
//     mediator, and the lease heartbeat transparently re-targets;
//   - the session resumes on a surviving replica (broker failover >= 1,
//     renew failures == 0) and no replica ever reaps the lease
//     (expirations == 0 everywhere) — zero leases lapse;
//   - after the killed replica is readmitted, session counts and
//     reservation accounting (AgentLoad/NetLoad) converge across all
//     three replicas;
//   - the drain hands the session off (handoffs >= 1) with zero rejected
//     renewals, and the client follows to the new home;
//   - a verification scrub over the open set comes back spotless, and
//     closing the session returns every replica to zero load.
func chaosMediatorFailover(t *testing.T) {
	const (
		nAgents  = 5
		nMeds    = 3
		objSize  = 96 * 1024
		nObjs    = 2
		nOps     = 150
		leaseTTL = 500 * time.Millisecond
	)
	n := memnet.New(2)
	seg := n.NewSegment("fed-lab", memnet.SegmentConfig{
		BandwidthBps:  1e10,
		FrameOverhead: 46,
		Seed:          23,
	})
	agentCfg := swift.AgentConfig{
		ResendCheck: 5 * time.Millisecond,
		ResendAfter: 10 * time.Millisecond,
	}
	const blockSize = 4096
	agents := make([]*swift.Agent, nAgents)
	hosts := make([]*memnet.Host, nAgents)
	addrs := make([]string, nAgents)
	for i := 0; i < nAgents; i++ {
		hosts[i] = n.MustHost(fmt.Sprintf("fed-agent%d", i), memnet.HostConfig{}, seg)
		st := integrity.NewStore(store.NewMem(), blockSize)
		a, err := swift.StartAgent(hosts[i], st, agentCfg)
		if err != nil {
			t.Fatalf("drill7: agent %d: %v", i, err)
		}
		agents[i] = a
		addrs[i] = a.Addr()
	}
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()

	// Three federated mediator replicas over the shared installation
	// model, real-clock leases short enough that a stalled heartbeat
	// would visibly lapse inside the drill.
	medAgents := make([]swift.MediatorAgentInfo, nAgents)
	for i, addr := range addrs {
		medAgents[i] = swift.MediatorAgentInfo{Addr: addr, Rate: 1e6, Net: 0}
	}
	fed, err := swift.NewMediatorFederation([]string{"med-a", "med-b", "med-c"}, swift.MediatorConfig{
		Agents:   medAgents,
		Nets:     []swift.MediatorNetInfo{{Name: "fed-lab", Capacity: 1e9}},
		LeaseTTL: leaseTTL,
	})
	if err != nil {
		t.Fatalf("drill7: federation: %v", err)
	}
	defer fed.Close()
	medIdx := func(name string) int {
		for i, nm := range fed.Names() {
			if nm == name {
				return i
			}
		}
		t.Fatalf("drill7: unknown replica %q", name)
		return -1
	}

	var endpoints []swift.MediatorEndpoint
	for _, m := range fed.Mediators() {
		endpoints = append(endpoints, m)
	}
	broker, err := swift.NewMediatorBroker(swift.BrokerConfig{
		Endpoints:    endpoints,
		Key:          "drill7",
		RetryTimeout: 5 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("drill7: broker: %v", err)
	}

	// Admit a 3+2 session through the tier and dial from its plan. 2.5
	// MB/s over 1 MB/s agents needs 3 data agents; +2 parity = all five.
	rec, err := broker.OpenSession(swift.MediatorRequirements{Rate: 2.5e6, ParityShards: 2})
	if err != nil {
		t.Fatalf("drill7: open session: %v", err)
	}
	if got := len(rec.Plan.Addrs); got != nAgents {
		t.Fatalf("drill7: plan spans %d agents, want %d", got, nAgents)
	}
	clientHost := n.MustHost("fed-client", memnet.HostConfig{}, seg)
	cfg := swift.Config{
		Host:           clientHost,
		RetryTimeout:   15 * time.Millisecond,
		MaxRetries:     20,
		HealthInterval: 25 * time.Millisecond,
		AutoRebuild:    true,
		ScrubInterval:  100 * time.Millisecond,
		Heartbeat:      broker.Heartbeat,
		Logf:           t.Logf,
	}
	cfg.ApplyPlan(&rec.Plan)
	fs, err := swift.Dial(cfg)
	if err != nil {
		t.Fatalf("drill7: dial: %v", err)
	}
	defer fs.Close()
	if got := fs.Scheme(); got != "3+2" {
		t.Fatalf("drill7: scheme = %q, want 3+2", got)
	}

	// The mediator fault family routes through the same controller the
	// agent faults use.
	ctl := faultinject.New(faultinject.Cluster{
		Net:      n,
		Segments: []*memnet.Segment{seg},
		KillMediator: func(i int) error {
			fed.Kill(i)
			return nil
		},
		RestartMediator: func(i int) error {
			return fed.Restart(i)
		},
		DrainMediator: func(i int) error {
			_, err := fed.Drain(i)
			return err
		},
	}, t.Logf)

	rng := rand.New(rand.NewSource(29))
	files := make([]*swift.File, nObjs)
	mirrors := make([][]byte, nObjs)
	for i := range files {
		f, err := fs.Create(fmt.Sprintf("fed-obj%d", i))
		if err != nil {
			t.Fatalf("drill7: create fed-obj%d: %v", i, err)
		}
		defer f.Close()
		m := make([]byte, objSize)
		rng.Read(m)
		if _, err := f.WriteAt(m, 0); err != nil {
			t.Fatalf("drill7: prefill fed-obj%d: %v", i, err)
		}
		files[i], mirrors[i] = f, m
	}

	firstHome := broker.Home()
	killed := medIdx(firstHome)
	t.Logf("drill7: session homed on %s", firstHome)

	// Traffic with the home replica killed a third of the way in and
	// restarted at two thirds. Ops are paced so the drill spans many
	// heartbeat rounds and a healthy fraction of the lease TTL.
	ops, opErrs := 0, 0
	buf := make([]byte, 16*1024)
	for ops < nOps {
		switch ops {
		case nOps / 3:
			t.Logf("drill7: killing home mediator %s mid-traffic", firstHome)
			if err := ctl.Apply(faultinject.Event{Kind: faultinject.KindKillMediator, Mediator: killed}); err != nil {
				t.Fatalf("drill7: kill mediator: %v", err)
			}
		case 2 * nOps / 3:
			// By now the heartbeat must have re-targeted; readmit the
			// crashed replica, which reconciles from the survivors.
			if broker.Home() == firstHome {
				t.Fatalf("drill7: session still homed on killed replica %s", firstHome)
			}
			if err := ctl.Apply(faultinject.Event{Kind: faultinject.KindRestartMediator, Mediator: killed}); err != nil {
				t.Fatalf("drill7: restart mediator: %v", err)
			}
		}
		obj := rng.Intn(nObjs)
		off := rng.Intn(objSize - len(buf))
		sz := 1 + rng.Intn(len(buf))
		ops++
		if rng.Float64() < 0.5 {
			got := buf[:sz]
			if _, err := files[obj].ReadAt(got, int64(off)); err != nil {
				opErrs++
				t.Errorf("drill7 op %d: read fed-obj%d[%d:+%d]: %v", ops, obj, off, sz, err)
				continue
			}
			if !bytes.Equal(got, mirrors[obj][off:off+sz]) {
				t.Fatalf("drill7 op %d: read fed-obj%d[%d:+%d] returned wrong bytes", ops, obj, off, sz)
			}
		} else {
			rng.Read(buf[:sz])
			if _, err := files[obj].WriteAt(buf[:sz], int64(off)); err != nil {
				opErrs++
				t.Errorf("drill7 op %d: write fed-obj%d[%d:+%d]: %v", ops, obj, off, sz, err)
				continue
			}
			copy(mirrors[obj][off:off+sz], buf[:sz])
		}
		time.Sleep(2 * time.Millisecond)
	}
	if opErrs != 0 {
		t.Fatalf("drill7: %d of %d operations failed across a mediator crash", opErrs, ops)
	}
	if broker.Failovers() < 1 {
		t.Fatalf("drill7: failovers = %d, want >= 1", broker.Failovers())
	}
	if broker.RenewFailures() != 0 {
		t.Fatalf("drill7: %d renew rounds exhausted every replica", broker.RenewFailures())
	}

	// Readmission convergence: all three replicas know the session and
	// agree on the reservation accounting, and none ever reaped the lease.
	fed.WaitMirrors()
	ref := fed.Mediator(0)
	for i, med := range fed.Mediators() {
		if got := med.Sessions(); got != 1 {
			t.Fatalf("drill7: replica %d tracks %d sessions, want 1", i, got)
		}
		for a := 0; a < nAgents; a++ {
			if med.AgentLoad(a) != ref.AgentLoad(a) {
				t.Fatalf("drill7: replica %d agent %d load %g diverges from %g",
					i, a, med.AgentLoad(a), ref.AgentLoad(a))
			}
		}
		if med.NetLoad(0) != ref.NetLoad(0) {
			t.Fatalf("drill7: replica %d net load diverges", i)
		}
		st, err := med.Status()
		if err != nil {
			t.Fatalf("drill7: replica %d status: %v", i, err)
		}
		if st.Expirations != 0 {
			t.Fatalf("drill7: replica %d reaped %d leases — a lease lapsed", i, st.Expirations)
		}
	}

	// Drain the current home mid-traffic: the session is handed to a peer
	// before the replica goes away, and the heartbeat follows it.
	drainHome := broker.Home()
	drainIdx := medIdx(drainHome)
	t.Logf("drill7: draining home mediator %s", drainHome)
	if err := ctl.Apply(faultinject.Event{Kind: faultinject.KindDrainMediator, Mediator: drainIdx}); err != nil {
		t.Fatalf("drill7: drain mediator: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := files[i%nObjs].ReadAt(buf[:4096], 0); err != nil {
			t.Fatalf("drill7: read during drain: %v", err)
		}
		broker.Heartbeat()
	}
	if broker.Home() == drainHome {
		t.Fatalf("drill7: session still heartbeats drained replica %s", drainHome)
	}
	if broker.RenewFailures() != 0 {
		t.Fatalf("drill7: renewals rejected during drain: %d", broker.RenewFailures())
	}
	st, err := fed.Mediator(drainIdx).Status()
	if err != nil {
		t.Fatalf("drill7: drained replica status: %v", err)
	}
	if st.Role != "draining" || st.Handoffs < 1 || st.LastHandoff.IsZero() {
		t.Fatalf("drill7: drain did not hand off: %+v", st)
	}

	// Spotless verification scrub, then byte-exact final audit.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rep := fs.ScrubOpen()
		if rep.Clean() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drill7: stripe never quiesced: %s", rep)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i, f := range files {
		got := make([]byte, objSize)
		if _, err := f.ReadAt(got, 0); err != nil {
			t.Fatalf("drill7: final read fed-obj%d: %v", i, err)
		}
		if !bytes.Equal(got, mirrors[i]) {
			t.Fatalf("drill7: final read fed-obj%d does not match mirror", i)
		}
	}

	// Close the session through the broker: every replica must return to
	// exactly zero reserved capacity — accounting converged, nothing leaked.
	if err := broker.CloseSession(); err != nil {
		t.Fatalf("drill7: close session: %v", err)
	}
	fed.WaitMirrors()
	for i, med := range fed.Mediators() {
		if got := med.Sessions(); got != 0 {
			t.Fatalf("drill7: replica %d still tracks %d sessions after close", i, got)
		}
		for a := 0; a < nAgents; a++ {
			if l := med.AgentLoad(a); l != 0 {
				t.Fatalf("drill7: replica %d agent %d load %g after close", i, a, l)
			}
		}
	}
	t.Logf("drill7: %d ops across mediator kill+restart+drain, zero errors, %d failovers, leases never lapsed",
		ops, broker.Failovers())
}

// chaosTraceSpans is TestChaosSoak's eighth drill: the observability
// proof. One shared tracer spans a four-agent parity installation, a
// wire-served mediator replica, and the client; one agent carries an
// injected read delay twice the client's retry timeout, and one raw
// fragment image is bitrotted beneath the integrity envelope. The drill
// asserts the assembled span trees, not just the op outcomes:
//
//   - the admission walk is one tree: the client-side med_admit root
//     with the replica's wire-joined mediator/admit span as its direct
//     child, nested in time;
//   - a read op against the delayed agent assembles client-op →
//     agent_read → agent-layer agent_read_serve with correct parent
//     links, the injected delay annotated in the serve span and the
//     serve span at least as long as the delay, plus a read-timeout
//     resend annotation — and the tail sampler keeps it as slow;
//   - the bitrot read assembles a degraded_read or read_repair child
//     under the op root, retry-marked and kept by the tail sampler.
func chaosTraceSpans(t *testing.T) {
	const (
		nAgents   = 4
		objSize   = 64 * 1024
		blockSize = 4096
		readDelay = 30 * time.Millisecond
	)
	n := memnet.New(1)
	seg := n.NewSegment("trace-lab", memnet.SegmentConfig{
		BandwidthBps:  1e10,
		FrameOverhead: 46,
		Seed:          31,
	})
	tracer := obs.NewTracer(obs.TracerConfig{Rate: 1})

	agents := make([]*swift.Agent, nAgents)
	raw := make(map[string]*store.Mem, nAgents)
	addrs := make([]string, nAgents)
	medAgents := make([]mediator.AgentInfo, nAgents)
	for i := 0; i < nAgents; i++ {
		host := n.MustHost(fmt.Sprintf("trace-agent%d", i), memnet.HostConfig{}, seg)
		r := store.NewMem()
		cfg := swift.AgentConfig{
			ResendCheck: 5 * time.Millisecond,
			ResendAfter: 10 * time.Millisecond,
			Tracer:      tracer,
		}
		if i == 1 {
			// The injected fault: agent 1 stalls every read it serves
			// for twice the client's retry timeout, so read bursts
			// against it time out and resend before the data lands.
			cfg.ReadDelay = readDelay
		}
		a, err := swift.StartAgent(host, integrity.NewStore(r, blockSize), cfg)
		if err != nil {
			t.Fatalf("drill8: agent %d: %v", i, err)
		}
		agents[i] = a
		addrs[i] = a.Addr()
		raw[a.Addr()] = r
		medAgents[i] = mediator.AgentInfo{Addr: a.Addr(), Rate: 1e6, Net: 0}
	}
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()

	// The mediator replica is served over the wire, so its admit span is
	// joined from the propagated trace context, not an in-process call.
	med, err := mediator.New(mediator.Config{
		Agents: medAgents,
		Nets:   []mediator.NetInfo{{Name: "trace-lab", Capacity: 1e9}},
		Self:   "trace-med",
	})
	if err != nil {
		t.Fatalf("drill8: mediator: %v", err)
	}
	defer med.Close()
	medHost := n.MustHost("trace-med", memnet.HostConfig{}, seg)
	medSrv, err := medrpc.Serve(medrpc.ServerConfig{
		Host: medHost, Port: "7060", Med: med, Logf: t.Logf, Tracer: tracer,
	})
	if err != nil {
		t.Fatalf("drill8: medrpc serve: %v", err)
	}
	defer medSrv.Close()

	clientHost := n.MustHost("trace-client", memnet.HostConfig{}, seg)
	stub, err := medrpc.NewClient(medrpc.ClientConfig{
		Host: clientHost, Name: "trace-med", Addr: "trace-med:7060", Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("drill8: medrpc client: %v", err)
	}
	broker, err := swift.NewMediatorBroker(swift.BrokerConfig{
		Endpoints: []swift.MediatorEndpoint{stub},
		Key:       "drill8",
		Tracer:    tracer,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("drill8: broker: %v", err)
	}
	// 2.5 MB/s over 1 MB/s agents needs 3 data agents; +1 XOR parity = 4.
	rec, err := broker.OpenSession(swift.MediatorRequirements{Rate: 2.5e6, Redundancy: true})
	if err != nil {
		t.Fatalf("drill8: open session: %v", err)
	}
	if got := len(rec.Plan.Addrs); got != nAgents {
		t.Fatalf("drill8: plan spans %d agents, want %d", got, nAgents)
	}
	cfg := swift.Config{
		Host:         clientHost,
		RetryTimeout: 15 * time.Millisecond,
		MaxRetries:   50,
		Tracer:       tracer,
		Logf:         t.Logf,
	}
	cfg.ApplyPlan(&rec.Plan)
	// The plan's unit (64 KiB for a four-agent session) would put the
	// whole test object in one stripe row on one data agent; shrink it so
	// the object stripes across every agent, the delayed one included.
	cfg.StripeUnit = 4096
	fs, err := swift.Dial(cfg)
	if err != nil {
		t.Fatalf("drill8: dial: %v", err)
	}
	defer fs.Close()

	f, err := fs.Create("trace-obj")
	if err != nil {
		t.Fatalf("drill8: create: %v", err)
	}
	defer f.Close()
	rng := rand.New(rand.NewSource(41))
	mirror := make([]byte, objSize)
	rng.Read(mirror)
	if _, err := f.WriteAt(mirror, 0); err != nil {
		t.Fatalf("drill8: prefill: %v", err)
	}

	// The slow read: every burst against agent 1 sleeps past the retry
	// timeout, so the op retries and still returns exact bytes.
	got := make([]byte, objSize)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("drill8: slow read: %v", err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("drill8: slow read returned wrong bytes")
	}

	// The repair read: one data-unit byte of the plan's first agent rots
	// beneath the envelope (local offset 137 sits in stripe row 0, whose
	// parity lives elsewhere), so the full read must detect, reconstruct
	// and repair.
	before := fs.Metrics()
	r := raw[rec.Plan.Addrs[0]]
	obj, err := r.Open("trace-obj", false)
	if err != nil {
		t.Fatalf("drill8: open raw fragment: %v", err)
	}
	const localOff = 137
	phys := int64(integrity.HeaderSize + localOff)
	var one [1]byte
	if _, err := obj.ReadAt(one[:], phys); err != nil {
		obj.Close()
		t.Fatalf("drill8: read raw byte: %v", err)
	}
	one[0] ^= 0xA5
	if _, err := obj.WriteAt(one[:], phys); err != nil {
		obj.Close()
		t.Fatalf("drill8: flip raw byte: %v", err)
	}
	obj.Close()
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("drill8: repair read: %v", err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("drill8: repair read returned corrupt bytes")
	}
	if d := fs.Metrics().Sub(before); d.Corruptions == 0 {
		t.Fatal("drill8: flipped byte never detected — the repair read did not exercise the envelope")
	}

	// Span-tree assertions. Traces flush when their last span finishes;
	// retransmitted bursts leave serve spans sleeping on the delayed
	// agent after the op returns, so poll briefly.
	spanByName := func(tr swift.OpTrace, name string) *swift.SpanRecord {
		for i := range tr.Spans {
			if tr.Spans[i].Name == name {
				return &tr.Spans[i]
			}
		}
		return nil
	}
	spanByID := func(tr swift.OpTrace, id uint64) *swift.SpanRecord {
		for i := range tr.Spans {
			if tr.Spans[i].SpanID == id {
				return &tr.Spans[i]
			}
		}
		return nil
	}
	hasNote := func(s *swift.SpanRecord, substr string) bool {
		for _, nt := range s.Notes {
			if strings.Contains(nt.Msg, substr) {
				return true
			}
		}
		return false
	}

	var admitTr, slowTr, repairTr *swift.OpTrace
	deadline := time.Now().Add(5 * time.Second)
	for {
		admitTr, slowTr, repairTr = nil, nil, nil
		traces := tracer.Traces()
		for i := range traces {
			tr := &traces[i]
			switch {
			case tr.Op == "med_admit":
				admitTr = tr
			case tr.Op != "read":
				continue
			}
			var delayed, repaired bool
			for j := range tr.Spans {
				if hasNote(&tr.Spans[j], "injected read delay") {
					delayed = true
				}
				if tr.Spans[j].Name == "read_repair" || tr.Spans[j].Name == "degraded_read" {
					repaired = true
				}
			}
			if delayed && !repaired && slowTr == nil {
				slowTr = tr
			}
			if repaired {
				repairTr = tr
			}
		}
		if admitTr != nil && slowTr != nil && repairTr != nil {
			break
		}
		if time.Now().After(deadline) {
			for _, tr := range tracer.Traces() {
				t.Logf("kept trace:\n%s", tr.Waterfall())
			}
			t.Fatalf("drill8: traces never assembled: admit=%v slow=%v repair=%v of %d kept",
				admitTr != nil, slowTr != nil, repairTr != nil, len(tracer.Traces()))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Admission: client-side root, wire-joined mediator child, nested in
	// both identity and time.
	root := spanByName(*admitTr, "med_admit")
	if root == nil || root.Parent != 0 || root.Layer != "core" {
		t.Fatalf("drill8: admit trace has no core-layer med_admit root: %+v", admitTr.Spans)
	}
	admit := spanByName(*admitTr, "admit")
	if admit == nil || admit.Layer != "mediator" {
		t.Fatalf("drill8: admit trace has no mediator-layer admit span: %+v", admitTr.Spans)
	}
	if admit.Parent != root.SpanID {
		t.Fatalf("drill8: admit span parent %x, want med_admit root %x", admit.Parent, root.SpanID)
	}
	if admit.Dur <= 0 || admit.Dur > root.Dur {
		t.Fatalf("drill8: admit span %v not nested in root %v", admit.Dur, root.Dur)
	}

	// The slow read: op root → agent_read → wire-joined serve span with
	// the injected delay annotated and at least the delay's length, plus
	// a resend annotation; kept by a tail criterion, not head sampling.
	root = spanByName(*slowTr, "read")
	if root == nil || root.Parent != 0 || root.Layer != "core" {
		t.Fatalf("drill8: slow read trace has no core-layer read root: %+v", slowTr.Spans)
	}
	var serveOK, resendOK bool
	for i := range slowTr.Spans {
		s := &slowTr.Spans[i]
		if s.Name == "agent_read_serve" && hasNote(s, "injected read delay") {
			parent := spanByID(*slowTr, s.Parent)
			if parent == nil || parent.Name != "agent_read" {
				t.Fatalf("drill8: delayed serve span parented to %+v, want an agent_read child", parent)
			}
			if parent.Parent != root.SpanID {
				t.Fatalf("drill8: agent_read parent %x, want read root %x", parent.Parent, root.SpanID)
			}
			if s.Layer != "agent" {
				t.Fatalf("drill8: serve span layer %q, want agent", s.Layer)
			}
			if s.Dur < readDelay {
				t.Fatalf("drill8: delayed serve span %v shorter than the injected %v", s.Dur, readDelay)
			}
			serveOK = true
		}
		if s.Retry && hasNote(s, "read timeout") {
			resendOK = true
		}
	}
	if !serveOK {
		t.Fatalf("drill8: no wire-joined serve span carries the injected delay: %+v", slowTr.Spans)
	}
	if !resendOK {
		t.Fatalf("drill8: injected timeout left no retry-marked resend annotation: %+v", slowTr.Spans)
	}
	if !slowTr.Slow() {
		t.Fatalf("drill8: tail sampler kept the slow read as %q, want a tail criterion", slowTr.Keep)
	}

	// The repair read: a retry-marked repair child under the op root.
	root = spanByName(*repairTr, "read")
	if root == nil || root.Parent != 0 {
		t.Fatalf("drill8: repair trace has no read root: %+v", repairTr.Spans)
	}
	var repairOK bool
	for i := range repairTr.Spans {
		s := &repairTr.Spans[i]
		if (s.Name == "read_repair" || s.Name == "degraded_read") && s.Retry && s.Parent == root.SpanID {
			repairOK = true
		}
	}
	if !repairOK {
		t.Fatalf("drill8: no retry-marked repair child under the op root: %+v", repairTr.Spans)
	}
	if !repairTr.Slow() {
		t.Fatalf("drill8: tail sampler kept the repair read as %q, want a tail criterion", repairTr.Keep)
	}
	t.Logf("drill8: admit, slow-read and repair span trees assembled and verified (%d traces kept)",
		len(tracer.Traces()))
}

// chaosOverload is TestChaosSoak's ninth drill: the overload-control
// proof. A five-agent 3+2 Reed–Solomon installation with a tight agent
// service queue serves a baseline of read traffic, then the faultinject
// demand and slowdown families push 2.5× the offered load through it
// while one agent straggles by 40ms per read. k=2 matters: reads route
// around the straggler by reconstruction, and the spare parity unit
// covers a second, transiently queue-full agent at the same time. The
// drill asserts graceful degradation, not mere survival:
//
//   - shed work is visible: the straggler's full queue produces explicit
//     pushback replies, counted by the client;
//   - hedged reads win: reads race parity reconstruction against the
//     straggler and the reconstruction lands first;
//   - backpressure never feeds failure attribution: zero lifecycle
//     transitions, every agent healthy throughout;
//   - goodput under the surge stays within 15% of the stripe's degraded
//     capacity (the EC read-amplification floor), and every byte served
//     matches the mirror;
//   - in-deadline operations stay bounded: successful-op p99 under the
//     surge is far below the 2s operation budget.
func chaosOverload(t *testing.T) {
	const (
		nAgents     = 5
		objSize     = 128 * 1024
		opBytes     = 16 * 1024
		baseWorkers = 4
		baseDur     = 500 * time.Millisecond
		surgeDur    = 1200 * time.Millisecond
	)
	n := memnet.New(1)
	defer n.Close()
	seg := n.NewSegment("overload-lab", memnet.SegmentConfig{
		BandwidthBps:  1e10,
		FrameOverhead: 46,
		Seed:          21,
	})
	agentCfg := swift.AgentConfig{
		ResendCheck: 5 * time.Millisecond,
		ResendAfter: 10 * time.Millisecond,
		// A tight service queue so the straggler sheds with pushback
		// instead of queueing without bound.
		MaxInflightReads:   6,
		PushbackRetryAfter: 2 * time.Millisecond,
	}
	agents := make([]*swift.Agent, nAgents)
	hosts := make([]*memnet.Host, nAgents)
	addrs := make([]string, nAgents)
	for i := 0; i < nAgents; i++ {
		hosts[i] = n.MustHost(fmt.Sprintf("ov-agent%d", i), memnet.HostConfig{}, seg)
		a, err := swift.StartAgent(hosts[i], store.NewMem(), agentCfg)
		if err != nil {
			t.Fatalf("drill9: agent %d: %v", i, err)
		}
		agents[i] = a
		addrs[i] = a.Addr()
	}
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()
	fs, err := swift.Dial(swift.Config{
		Host:           n.MustHost("ov-client", memnet.HostConfig{}, seg),
		Agents:         addrs,
		StripeUnit:     4096,
		Parity:         true,
		ParityShards:   2,
		RetryTimeout:   15 * time.Millisecond,
		MaxRetries:     20,
		HealthInterval: 25 * time.Millisecond,
		AutoRebuild:    true,
		OpTimeout:      2 * time.Second,
		HedgeReads:     true,
		// At 2.5x overdemand even healthy agents see transient queue-full
		// bursts; the straggler's queue is full continuously. A higher
		// strike count separates the regimes — healthy agents intersperse
		// successes that reset their strikes long before eight consecutive
		// pushbacks, so only the straggler's breaker trips.
		BreakerThreshold: 8,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatalf("drill9: dial: %v", err)
	}
	defer fs.Close()

	mirror := make([]byte, objSize)
	rand.New(rand.NewSource(41)).Read(mirror)
	seed, err := fs.Create("hot")
	if err != nil {
		t.Fatalf("drill9: create: %v", err)
	}
	if _, err := seed.WriteAt(mirror, 0); err != nil {
		t.Fatalf("drill9: prefill: %v", err)
	}
	defer seed.Close()

	// Demand routes through the fault controller like any other fault:
	// the surge event scales the worker pool, the slowdown event injects
	// the straggler's per-read service delay.
	var demandX10 atomic.Int64
	demandX10.Store(10)
	ctl := faultinject.New(faultinject.Cluster{
		Net:        n,
		Segments:   []*memnet.Segment{seg},
		AgentHosts: hosts,
		SetDemand: func(mult float64) error {
			demandX10.Store(int64(mult * 10))
			return nil
		},
		SlowAgent: func(i int, d time.Duration) error {
			agents[i].SetReadDelay(d)
			return nil
		},
	}, t.Logf)

	// runPhase drives `workers` concurrent readers (one File handle each
	// — File ops serialize per handle) for dur, verifying every byte
	// against the mirror. Overload sheds (deadline, budget, busy) are
	// tolerated and counted; anything else fails the drill.
	runPhase := func(name string, workers int, dur time.Duration) (goodput float64, lats []time.Duration, sheds int64) {
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			bytesOK  int64
			shedOps  int64
			phaseLat []time.Duration
		)
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				f, err := fs.Open("hot")
				if err != nil {
					t.Errorf("drill9 %s: worker %d open: %v", name, w, err)
					return
				}
				defer f.Close()
				rng := rand.New(rand.NewSource(int64(w)*77 + 5))
				buf := make([]byte, opBytes)
				deadline := start.Add(dur)
				for time.Now().Before(deadline) {
					off := int64(rng.Intn(objSize - opBytes))
					t0 := time.Now()
					_, err := f.ReadAt(buf, off)
					el := time.Since(t0)
					if err != nil {
						// Race instrumentation slows service an order of
						// magnitude, so give-up budgets fire spuriously
						// there; tolerate those too rather than skew the
						// timing regime the drill calibrates.
						if errors.Is(err, swift.ErrDeadline) ||
							errors.Is(err, swift.ErrRetryBudget) ||
							errors.Is(err, swift.ErrAgentBusy) ||
							raceEnabled {
							mu.Lock()
							shedOps++
							mu.Unlock()
							continue
						}
						t.Errorf("drill9 %s: worker %d read [%d:+%d]: %v", name, w, off, opBytes, err)
						return
					}
					if !bytes.Equal(buf, mirror[off:off+opBytes]) {
						t.Errorf("drill9 %s: worker %d read wrong bytes at %d", name, w, off)
						return
					}
					mu.Lock()
					bytesOK += opBytes
					phaseLat = append(phaseLat, el)
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		return float64(bytesOK) / elapsed, phaseLat, shedOps
	}

	baseGoodput, _, baseSheds := runPhase("baseline", baseWorkers, baseDur)
	if baseGoodput == 0 {
		t.Fatal("drill9: baseline served nothing")
	}

	if err := ctl.Apply(faultinject.Event{Kind: faultinject.KindDemandSurge, Rate: 2.5}); err != nil {
		t.Fatalf("drill9: surge: %v", err)
	}
	if err := ctl.Apply(faultinject.Event{Kind: faultinject.KindAgentSlowdown, Agent: 0, Latency: 40 * time.Millisecond}); err != nil {
		t.Fatalf("drill9: slowdown: %v", err)
	}
	surgeWorkers := int(demandX10.Load()) * baseWorkers / 10
	if surgeWorkers != 10 {
		t.Fatalf("drill9: demand callback yielded %d workers, want 10", surgeWorkers)
	}
	surgeGoodput, surgeLats, surgeSheds := runPhase("surge", surgeWorkers, surgeDur)
	ctl.HealAll()

	// The degradation and attribution assertions below are calibrated
	// for real time (hedge delays, give-up budgets and queue waits all
	// interlock); race instrumentation slows the data path an order of
	// magnitude and voids that calibration, so under -race the drill
	// only proves the mechanics run data-race free and byte-exact.
	var p99 time.Duration
	if !raceEnabled {
		// Graceful degradation, not collapse. With the breaker holding the
		// straggler out of the stripe, every read of one of its data units is
		// reconstructed from the m=3 surviving units, so three of every five
		// rotations pay 3× read amplification: a byte of goodput costs about
		// (2·1 + 3·3)/5 = 2.2× what it did uncontended. The drill demands
		// ≥85% of that degraded capacity — pushback, hedging and the breaker
		// must deliver the EC floor, not congestion collapse.
		degradedCap := baseGoodput / 2.2
		if surgeGoodput < 0.85*degradedCap {
			t.Fatalf("drill9: surge goodput %.0f B/s fell below 85%% of degraded capacity %.0f B/s (uncontended baseline %.0f B/s)",
				surgeGoodput, degradedCap, baseGoodput)
		}
		// In-deadline ops stay bounded: p99 far under the 2s operation budget.
		if len(surgeLats) == 0 {
			t.Fatal("drill9: surge completed no operations")
		}
		sort.Slice(surgeLats, func(i, j int) bool { return surgeLats[i] < surgeLats[j] })
		p99 = surgeLats[len(surgeLats)*99/100]
		if p99 > time.Second {
			t.Fatalf("drill9: surge p99 %v unbounded (op budget 2s)", p99)
		}
	}

	// The shed work must be visible on the overload instruments — and
	// ONLY there: the lifecycle saw nothing.
	m := fs.Metrics()
	st := fs.Stats()
	if !raceEnabled {
		if m.Pushbacks == 0 {
			t.Fatal("drill9: straggler's full queue produced no pushbacks")
		}
		if m.Hedges == 0 || m.HedgeWins == 0 {
			t.Fatalf("drill9: hedges = %d, hedge wins = %d, want both > 0", m.Hedges, m.HedgeWins)
		}
		for i, as := range st.Agents {
			if as.Transitions != 0 {
				t.Fatalf("drill9: agent %d lifecycle transitions = %d under pushback, want 0", i, as.Transitions)
			}
		}
		for i, h := range fs.Health() {
			if h.State != swift.StateHealthy {
				t.Fatalf("drill9: agent %d state = %v after the surge, want healthy", i, h.State)
			}
		}
	}
	applied := strings.Join(ctl.Log(), "\n")
	for _, family := range []string{"demand-surge", "agent-slowdown"} {
		if !strings.Contains(applied, family) {
			t.Fatalf("drill9: fault family %s never applied:\n%s", family, applied)
		}
	}

	// After the surge drains, the object reads back byte-identical
	// through a healthy stripe.
	time.Sleep(500 * time.Millisecond) // stale delayed requests drain, shed as expired
	got := make([]byte, objSize)
	if _, err := seed.ReadAt(got, 0); err != nil {
		t.Fatalf("drill9: read after surge: %v", err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("drill9: post-surge read does not match the mirror")
	}
	t.Logf("drill9: baseline %.1f MB/s (%d sheds) -> surge %.1f MB/s (%d ops, %d sheds, p99 %v), %d pushbacks, %d/%d hedges won, budget fill %.2f",
		baseGoodput/1e6, baseSheds, surgeGoodput/1e6, len(surgeLats), surgeSheds, p99,
		m.Pushbacks, m.HedgeWins, m.Hedges, st.Overload.BudgetFill)
}

// chaosCacheCoherence is TestChaosSoak's tenth drill: the cache
// coherence protocol under mediator faults. A five-agent 3+2 volume is
// shared by two clients — a writer running bounded write-behind and a
// reader serving from its block cache — with coherence anchored in a
// three-replica mediator federation through per-client broker sessions:
//
//   - after every write/declare/sync cycle the reader's bytes match the
//     writer's mirror exactly — zero stale reads past an invalidation —
//     including while the replica homing the coherence sessions is dead
//     and after it restarts and reconciles generations from its peers;
//   - a writer that loses its lease with dirty extents outstanding
//     crash-flushes: the dirty bytes land on the agents before the
//     cached images are dropped, and a fresh uncached client reads them
//     back byte-identical;
//   - zero operation errors end to end, and the reader's cache really
//     served (nonzero hits) while absorbing >= one invalidation per
//     write cycle.
func chaosCacheCoherence(t *testing.T) {
	const (
		nAgents = 5
		objSize = 128 * 1024
		cycles  = 60
	)
	n := memnet.New(2)
	seg := n.NewSegment("cc-lab", memnet.SegmentConfig{
		BandwidthBps:  1e10,
		FrameOverhead: 46,
		Seed:          31,
	})
	agentCfg := swift.AgentConfig{
		ResendCheck: 5 * time.Millisecond,
		ResendAfter: 10 * time.Millisecond,
	}
	agents := make([]*swift.Agent, nAgents)
	addrs := make([]string, nAgents)
	for i := 0; i < nAgents; i++ {
		h := n.MustHost(fmt.Sprintf("cc-agent%d", i), memnet.HostConfig{}, seg)
		a, err := swift.StartAgent(h, integrity.NewStore(store.NewMem(), 4096), agentCfg)
		if err != nil {
			t.Fatalf("drill10: agent %d: %v", i, err)
		}
		agents[i] = a
		addrs[i] = a.Addr()
	}
	defer func() {
		for _, a := range agents {
			a.Close()
		}
	}()

	medAgents := make([]swift.MediatorAgentInfo, nAgents)
	for i, addr := range addrs {
		medAgents[i] = swift.MediatorAgentInfo{Addr: addr, Rate: 1e6, Net: 0}
	}
	fed, err := swift.NewMediatorFederation([]string{"cc-a", "cc-b", "cc-c"}, swift.MediatorConfig{
		Agents: medAgents,
		Nets:   []swift.MediatorNetInfo{{Name: "cc-lab", Capacity: 1e9}},
	})
	if err != nil {
		t.Fatalf("drill10: federation: %v", err)
	}
	defer fed.Close()
	medIdx := func(name string) int {
		for i, nm := range fed.Names() {
			if nm == name {
				return i
			}
		}
		t.Fatalf("drill10: unknown replica %q", name)
		return -1
	}
	var endpoints []swift.MediatorEndpoint
	for _, m := range fed.Mediators() {
		endpoints = append(endpoints, m)
	}
	openBroker := func(key string) *swift.MediatorBroker {
		b, err := swift.NewMediatorBroker(swift.BrokerConfig{
			Endpoints:    endpoints,
			Key:          key,
			RetryTimeout: 5 * time.Millisecond,
			Logf:         t.Logf,
		})
		if err != nil {
			t.Fatalf("drill10: broker %s: %v", key, err)
		}
		if _, err := b.OpenSession(swift.MediatorRequirements{Rate: 0.2e6}); err != nil {
			t.Fatalf("drill10: session %s: %v", key, err)
		}
		return b
	}
	writerBroker := openBroker("cc-writer")
	readerBroker := openBroker("cc-reader")

	// Both clients dial the full five-agent 3+2 layout directly; the
	// broker sessions anchor coherence, not striping.
	dial := func(name string, mut func(*swift.Config)) *swift.FS {
		cfg := swift.Config{
			Host:         n.MustHost(name, memnet.HostConfig{}, seg),
			Agents:       addrs,
			ParityShards: 2,
			RetryTimeout: 15 * time.Millisecond,
			MaxRetries:   20,
			Logf:         t.Logf,
		}
		if mut != nil {
			mut(&cfg)
		}
		fs, err := swift.Dial(cfg)
		if err != nil {
			t.Fatalf("drill10: dial %s: %v", name, err)
		}
		return fs
	}
	writer := dial("cc-writer", func(cfg *swift.Config) {
		cfg.WriteBehindMax = 256 * 1024
		cfg.CacheSync = writerBroker.CacheSync
	})
	defer writer.Close()
	reader := dial("cc-reader", func(cfg *swift.Config) {
		cfg.CacheSize = 1 << 20
		cfg.ReadAhead = 32 * 1024
		cfg.CacheSync = readerBroker.CacheSync
	})
	defer reader.Close()

	rng := rand.New(rand.NewSource(37))
	mirror := make([]byte, objSize)
	rng.Read(mirror)
	wf, err := writer.Create("cc-obj")
	if err != nil {
		t.Fatalf("drill10: create: %v", err)
	}
	defer wf.Close()
	if _, err := wf.WriteAt(mirror, 0); err != nil {
		t.Fatalf("drill10: prefill: %v", err)
	}
	if err := wf.Sync(); err != nil {
		t.Fatalf("drill10: prefill sync: %v", err)
	}
	writer.CoherenceSync()
	rf, err := reader.Open("cc-obj")
	if err != nil {
		t.Fatalf("drill10: reader open: %v", err)
	}
	defer rf.Close()

	victim := medIdx(writerBroker.Home())
	got := make([]byte, objSize)
	patch := make([]byte, 24*1024)
	for i := 1; i <= cycles; i++ {
		switch i {
		case cycles / 3:
			t.Logf("drill10: killing coherence home %s mid-stream", fed.Names()[victim])
			fed.Kill(victim)
		case 2 * cycles / 3:
			t.Logf("drill10: restarting %s", fed.Names()[victim])
			if err := fed.Restart(victim); err != nil {
				t.Fatalf("drill10: restart: %v", err)
			}
			fed.WaitMirrors()
		}
		// The writer patches a random mid-stream range through
		// write-behind, forces the flush barrier, and declares the write;
		// the reader syncs and must converge on the new bytes.
		off := rng.Intn(objSize - len(patch))
		rng.Read(patch)
		if _, err := wf.WriteAt(patch, int64(off)); err != nil {
			t.Fatalf("drill10 cycle %d: write: %v", i, err)
		}
		copy(mirror[off:], patch)
		if err := wf.Sync(); err != nil {
			t.Fatalf("drill10 cycle %d: sync: %v", i, err)
		}
		writer.CoherenceSync()
		reader.CoherenceSync()
		// Two reads per cycle: the first refetches past the invalidation,
		// the second must be served from the refilled cache — both exact.
		for pass := 1; pass <= 2; pass++ {
			if _, err := rf.ReadAt(got, 0); err != nil {
				t.Fatalf("drill10 cycle %d pass %d: read: %v", i, pass, err)
			}
			if !bytes.Equal(got, mirror) {
				t.Fatalf("drill10 cycle %d pass %d: stale read past the invalidation", i, pass)
			}
		}
	}
	rs := reader.CacheStats()
	if rs.Hits == 0 {
		t.Fatal("drill10: reader cache never served a hit")
	}
	if rs.Invalidations < cycles/2 {
		t.Fatalf("drill10: reader absorbed %d invalidations over %d write cycles", rs.Invalidations, cycles)
	}

	// Crash-flush: the writer's lease dies with dirty extents
	// outstanding. The lease-loss path must flush them to the agents
	// before dropping the cache, so a fresh uncached client reads the
	// final bytes back exactly.
	off := rng.Intn(objSize - len(patch))
	rng.Read(patch)
	if _, err := wf.WriteAt(patch, int64(off)); err != nil {
		t.Fatalf("drill10: final write: %v", err)
	}
	copy(mirror[off:], patch)
	home := medIdx(writerBroker.Home())
	rec := writerBroker.Record()
	if err := fed.Mediator(home).CloseSession(rec.ID); err != nil {
		t.Fatalf("drill10: close session: %v", err)
	}
	fed.WaitMirrors()
	writer.CoherenceSync() // ErrUnknownSession -> crash-flush + drop
	if d := writer.CacheStats().Dirty; d != 0 {
		t.Fatalf("drill10: %d dirty bytes survived the lease loss unflushed", d)
	}
	verifier := dial("cc-verify", func(cfg *swift.Config) { cfg.CacheSize = -1 })
	defer verifier.Close()
	vf, err := verifier.Open("cc-obj")
	if err != nil {
		t.Fatalf("drill10: verifier open: %v", err)
	}
	defer vf.Close()
	if _, err := vf.ReadAt(got, 0); err != nil {
		t.Fatalf("drill10: verifier read: %v", err)
	}
	if !bytes.Equal(got, mirror) {
		t.Fatal("drill10: crash-flushed bytes did not survive on the agents")
	}
	t.Logf("drill10: %d cycles, reader hit rate %.1f%%, %d invalidations, crash-flush verified",
		cycles, 100*rs.HitRate(), rs.Invalidations)
}
