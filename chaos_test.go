package swift_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"swift"
	"swift/internal/faultinject"
	"swift/internal/store"
	"swift/internal/transport/memnet"
)

// TestChaosSoak is the tier-1 robustness proof: a parity-protected
// installation absorbs a deterministic, seeded schedule of serialized
// faults — agent crashes with restarts, partitions with heals, latency
// spikes, loss bursts — while continuous read/write traffic flows, and
//
//   - every read returns exactly the bytes the in-memory mirror predicts;
//   - no operation errors, because at most one agent is impaired at a
//     time and computed-copy redundancy masks a single failure;
//   - every crashed or partitioned agent is re-admitted automatically by
//     the background health monitor (observed via FS.Health()), with its
//     fragments rebuilt from parity — the test never calls a manual
//     recovery entry point.
func TestChaosSoak(t *testing.T) {
	const (
		nAgents = 4
		objSize = 128 * 1024
		nObjs   = 3
	)
	n := memnet.New(1)
	seg := n.NewSegment("lab", memnet.SegmentConfig{
		BandwidthBps:  1e10, // fast medium: the soak exercises faults, not timing
		FrameOverhead: 46,
		Seed:          3,
	})

	agentCfg := swift.AgentConfig{
		ResendCheck: 5 * time.Millisecond,
		ResendAfter: 10 * time.Millisecond,
	}
	agents := make([]*swift.Agent, nAgents)
	hosts := make([]*memnet.Host, nAgents)
	sts := make([]store.Store, nAgents)
	addrs := make([]string, nAgents)
	for i := 0; i < nAgents; i++ {
		hosts[i] = n.MustHost(fmt.Sprintf("agent%d", i), memnet.HostConfig{}, seg)
		sts[i] = swift.NewMemStore()
		a, err := swift.StartAgent(hosts[i], sts[i], agentCfg)
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
		agents[i] = a
		addrs[i] = a.Addr()
	}
	defer func() {
		for _, a := range agents {
			if a != nil {
				a.Close()
			}
		}
	}()

	clientHost := n.MustHost("client", memnet.HostConfig{}, seg)
	fs, err := swift.Dial(swift.Config{
		Host:       clientHost,
		Agents:     addrs,
		StripeUnit: 4096,
		Parity:     true,
		// Small no-progress budget (20 × 15ms ≈ 300ms) so failure
		// attribution outpaces the fault schedule, and a fast monitor so
		// re-admission fits inside the recovery gaps.
		RetryTimeout:   15 * time.Millisecond,
		MaxRetries:     20,
		HealthInterval: 25 * time.Millisecond,
		AutoRebuild:    true,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer fs.Close()

	// Pre-fill the object set and its in-memory mirrors.
	rng := rand.New(rand.NewSource(9))
	files := make([]*swift.File, nObjs)
	mirrors := make([][]byte, nObjs)
	for i := range files {
		f, err := fs.Create(fmt.Sprintf("obj%d", i))
		if err != nil {
			t.Fatalf("create obj%d: %v", i, err)
		}
		defer f.Close()
		m := make([]byte, objSize)
		rng.Read(m)
		if _, err := f.WriteAt(m, 0); err != nil {
			t.Fatalf("prefill obj%d: %v", i, err)
		}
		files[i], mirrors[i] = f, m
	}

	// The fault schedule: serialized windows covering all four required
	// families, deterministic in the seed. Crash and restart route
	// through callbacks that own the agent processes.
	ctl := faultinject.New(faultinject.Cluster{
		Net:        n,
		Segments:   []*memnet.Segment{seg},
		AgentHosts: hosts,
		Crash: func(i int) error {
			if agents[i] == nil {
				return nil
			}
			agents[i].Close()
			agents[i] = nil
			return nil
		},
		Restart: func(i int) error {
			if agents[i] != nil {
				return nil
			}
			a, err := swift.StartAgent(hosts[i], sts[i], agentCfg)
			if err != nil {
				return err
			}
			agents[i] = a
			return nil
		},
	}, t.Logf)
	sched := faultinject.RandomSchedule(11, faultinject.ScheduleOpts{
		Agents:   nAgents,
		Segments: 1,
		Duration: 3500 * time.Millisecond,
		MinFault: 150 * time.Millisecond,
		MaxFault: 300 * time.Millisecond,
		Gap:      400 * time.Millisecond,
		Kinds: []faultinject.Kind{
			faultinject.KindCrashAgent,
			faultinject.KindPartition,
			faultinject.KindLatencySpike,
			faultinject.KindLossBurst,
		},
	})
	if len(sched) < 8 {
		t.Fatalf("schedule too short to cover all families: %d events", len(sched))
	}

	chaosErr := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		chaosErr <- ctl.Run(sched, nil)
	}()

	// Continuous traffic until the schedule completes. The schedule is
	// serialized (at most one agent impaired at any instant), so with
	// parity every operation must succeed and every read must match the
	// mirror exactly.
	ops, opErrs := 0, 0
	buf := make([]byte, 16*1024)
soak:
	for {
		select {
		case <-done:
			break soak
		default:
		}
		obj := rng.Intn(nObjs)
		off := rng.Intn(objSize - len(buf))
		sz := 1 + rng.Intn(len(buf))
		ops++
		if rng.Float64() < 0.5 {
			got := buf[:sz]
			if _, err := files[obj].ReadAt(got, int64(off)); err != nil {
				opErrs++
				t.Errorf("op %d: read obj%d[%d:+%d]: %v", ops, obj, off, sz, err)
				continue
			}
			if !bytes.Equal(got, mirrors[obj][off:off+sz]) {
				t.Fatalf("op %d: read obj%d[%d:+%d] returned wrong bytes", ops, obj, off, sz)
			}
		} else {
			rng.Read(buf[:sz])
			if _, err := files[obj].WriteAt(buf[:sz], int64(off)); err != nil {
				opErrs++
				t.Errorf("op %d: write obj%d[%d:+%d]: %v", ops, obj, off, sz, err)
				continue
			}
			copy(mirrors[obj][off:off+sz], buf[:sz])
		}
	}
	if err := <-chaosErr; err != nil {
		t.Fatalf("chaos schedule: %v", err)
	}
	if opErrs != 0 {
		t.Fatalf("%d of %d operations failed with at most one agent impaired", opErrs, ops)
	}
	if ops < 20 {
		t.Fatalf("soak performed only %d operations", ops)
	}

	// All four fault families must actually have fired.
	applied := strings.Join(ctl.Log(), "\n")
	for _, family := range []string{"crash-agent", "partition", "latency-spike", "loss-burst"} {
		if !strings.Contains(applied, family) {
			t.Fatalf("fault family %s never applied:\n%s", family, applied)
		}
	}

	// Automatic re-admission: the background monitor must return every
	// agent to healthy — sessions reopened, fragments rebuilt — with no
	// manual intervention.
	deadline := time.Now().Add(5 * time.Second)
	for {
		healthy := 0
		for _, h := range fs.Health() {
			if h.State == swift.StateHealthy {
				healthy++
			}
		}
		if healthy == nAgents {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("agents never all re-admitted: %+v", fs.Health())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Final end-to-end audit: every object reads back exactly as the
	// mirror predicts, through the healthy (non-degraded) path.
	for i, f := range files {
		got := make([]byte, objSize)
		if _, err := f.ReadAt(got, 0); err != nil {
			t.Fatalf("final read obj%d: %v", i, err)
		}
		if !bytes.Equal(got, mirrors[i]) {
			t.Fatalf("final read obj%d does not match mirror", i)
		}
	}
	t.Logf("soak: %d ops, %d faults applied, all agents re-admitted", ops, len(ctl.Log()))
}
