//go:build !race

package swift_test

// raceEnabled reports that this test binary was built with the race
// detector; see race_test.go.
const raceEnabled = false
