#!/bin/sh
# Distributed-tracing smoke: boot a swiftd storage agent plus mediator
# replica over real UDP with an injected per-read latency fault, run a
# leased traced client against it, and verify the span trees end to end:
# the client assembles its own op waterfalls, and the agent's collector
# (fetched over HTTP with `swiftctl trace -from ... -slow`) holds the
# wire-joined service spans carrying the injected delay, tail-kept as
# fault traces.
set -eu

AGENT_PORT=17170
MED_PORT=17160
METRICS=127.0.0.1:19092
DELAY=25ms
TMP=$(mktemp -d)
SWIFTD_PID=
trap 'kill $SWIFTD_PID 2>/dev/null || true; rm -rf "$TMP"' EXIT

fetch() { # fetch URL FILE
	if command -v curl >/dev/null 2>&1; then
		curl -fsS -o "$2" "$1"
	else
		wget -q -O "$2" "$1"
	fi
}

wait_for() { # wait_for URL
	i=0
	while ! fetch "$1" "$TMP/probe" 2>/dev/null; do
		i=$((i + 1))
		[ "$i" -ge 50 ] && { echo "timeout waiting for $1" >&2; exit 1; }
		sleep 0.2
	done
}

# Run the built binaries directly (not `go run`) so the cleanup trap
# kills the server process itself, not a wrapper.
go build -o "$TMP/swiftd" ./cmd/swiftd
go build -o "$TMP/swiftctl" ./cmd/swiftctl

echo "== swiftd: traced agent + mediator replica, ${DELAY} injected read delay"
"$TMP/swiftd" -mem -port $AGENT_PORT -trace 1 -read-delay $DELAY \
	-metrics "$METRICS" \
	-mediator $MED_PORT -mediator-name med-a \
	-mediator-agents 127.0.0.1:$AGENT_PORT@400 \
	>"$TMP/swiftd.out" 2>&1 &
SWIFTD_PID=$!
wait_for "http://$METRICS/metrics"

echo "== leased traced client: scratch write+read through the tier"
"$TMP/swiftctl" -mediators med-a=127.0.0.1:$MED_PORT -rate 100 \
	trace -mb 1 >"$TMP/client.out" 2>&1 || {
	echo "client trace run failed:" >&2; cat "$TMP/client.out" >&2; exit 1
}

# The client assembles its own waterfalls: a leased session line plus
# write and read op trees with per-agent child spans.
grep -q 'session .* leased' "$TMP/client.out" || { echo "client was not leased" >&2; cat "$TMP/client.out" >&2; exit 1; }
for want in 'op=write' 'op=read' 'agent_read' 'agent_write'; do
	grep -q "$want" "$TMP/client.out" || {
		echo "client trace output missing $want" >&2; cat "$TMP/client.out" >&2; exit 1
	}
done

echo "== agent collector: injected delay visible in slow span trees"
"$TMP/swiftctl" trace -from "http://$METRICS" -slow >"$TMP/agent.out" 2>&1 || {
	echo "trace -from failed:" >&2; cat "$TMP/agent.out" >&2; exit 1
}
# The agent-side service span must carry the injected delay, marked as a
# fault so the tail sampler kept it without head sampling's help.
for want in 'agent_read_serve' "injected read delay $DELAY" 'FAULT' 'keep=fault'; do
	grep -q "$want" "$TMP/agent.out" || {
		echo "agent trace output missing $want" >&2; cat "$TMP/agent.out" >&2; exit 1
	}
done

# JSON export of the same collector must parse and carry trace ids.
fetch "http://$METRICS/trace/ops?format=json&slow=1" "$TMP/ops.json"
grep -q '"trace"' "$TMP/ops.json" || { echo "no traces in JSON export" >&2; exit 1; }

echo "trace smoke OK"
