#!/bin/sh
# Client-cache coherence smoke: boot a real deployment — three storage
# agents plus one mediator replica — and verify the caching tier's
# coherence story end to end over actual UDP sockets, across separate
# client PROCESSES (the in-repo tests cover separate clients in one
# process; this drill is the multi-process version an installation
# actually runs):
#
#   A cached reader re-reads an object in three passes while a writer in
#   another process overwrites it between passes 1 and 2. Both wire the
#   mediator session as their coherence channel (-mediators with
#   explicit -agents and no -rate: a coherence-only lease that leaves
#   the striping layout to the flags, so both processes agree on it).
#
#   Must hold: pass 1 hashes to v1; passes 2 and 3 hash to v2 (the
#   coherence round before pass 2 invalidated the cached v1); pass 3 is
#   served from cache (hits > 0, so coherence cannot "pass" by never
#   caching); at least one invalidation was recorded; and the bytes the
#   reader saved on its final pass are byte-identical to v2.
set -eu

AGENT_PORT_BASE=19170
MED_PORT=19160
TMP=$(mktemp -d)
PIDS=
trap 'kill $PIDS 2>/dev/null || true; rm -rf "$TMP"' EXIT

# Run the built binaries directly (not `go run`) so the cleanup trap
# kills the server processes themselves, not a wrapper.
go build -o "$TMP/swiftd" ./cmd/swiftd
go build -o "$TMP/swiftctl" ./cmd/swiftctl

echo "== boot 3 storage agents"
AGENTS=
MED_AGENTS=
i=0
while [ "$i" -lt 3 ]; do
	port=$((AGENT_PORT_BASE + i))
	"$TMP/swiftd" -port "$port" -mem >"$TMP/agent$i.out" 2>&1 &
	PIDS="$PIDS $!"
	AGENTS="$AGENTS${AGENTS:+,}127.0.0.1:$port"
	MED_AGENTS="$MED_AGENTS${MED_AGENTS:+,}127.0.0.1:$port@400"
	i=$((i + 1))
done

echo "== boot 1 mediator replica (the coherence channel)"
"$TMP/swiftd" -mediator "$MED_PORT" -mediator-name med-a \
	-mediator-agents "$MED_AGENTS" >"$TMP/med-a.out" 2>&1 &
PIDS="$PIDS $!"
sleep 0.5

# Coherence-only sessions: explicit agent set, no -rate. Layout flags
# must match between the processes, and here both just use the defaults.
CTL="$TMP/swiftctl -agents $AGENTS -mediators med-a=127.0.0.1:$MED_PORT"

echo "== write v1, then start a cached three-pass reader"
dd if=/dev/urandom of="$TMP/v1" bs=4096 count=256 2>/dev/null
dd if=/dev/urandom of="$TMP/v2" bs=4096 count=256 2>/dev/null
$CTL put "$TMP/v1" cobj 2>"$TMP/put1.err"

$CTL -readahead 131072 reread -n 3 -pause 6s -out "$TMP/back" cobj \
	>"$TMP/reread.out" 2>"$TMP/reread.err" &
READER_PID=$!

echo "== overwrite with v2 from another process, mid-pause"
sleep 2
$CTL put "$TMP/v2" cobj 2>"$TMP/put2.err"

wait $READER_PID || {
	echo "cached reader failed" >&2
	cat "$TMP/reread.err" >&2
	exit 1
}
cat "$TMP/reread.out"

echo "== pass 1 must be v1; passes 2 and 3 must both be v2"
SHA_V1=$(sha256sum "$TMP/v1" | cut -d' ' -f1)
SHA_V2=$(sha256sum "$TMP/v2" | cut -d' ' -f1)
for want in "1 $SHA_V1" "2 $SHA_V2" "3 $SHA_V2"; do
	p=${want% *}
	sha=${want#* }
	grep -q "^pass $p: 1048576 bytes sha256=$sha\$" "$TMP/reread.out" || {
		echo "pass $p did not hash to the expected image" >&2
		exit 1
	}
done

echo "== pass 3 must come from cache, via an invalidation of v1"
CACHE_LINE=$(grep '^cache:' "$TMP/reread.out")
HITS=$(echo "$CACHE_LINE" | sed -n 's/.*hits=\([0-9]*\).*/\1/p')
INVALS=$(echo "$CACHE_LINE" | sed -n 's/.*invalidations=\([0-9]*\).*/\1/p')
[ "${HITS:-0}" -gt 0 ] || {
	echo "reader cache never served a hit ($CACHE_LINE)" >&2
	exit 1
}
[ "${INVALS:-0}" -gt 0 ] || {
	echo "reader cache was never invalidated ($CACHE_LINE)" >&2
	exit 1
}

echo "== bytes the reader saved must be v2, byte for byte"
cmp "$TMP/back" "$TMP/v2"

echo "cache smoke OK"
