#!/bin/sh
# Mediator-federation smoke: boot a real deployment — four storage agents
# plus three mediator-only swiftd replicas peered into a federated tier —
# and verify the failover story end to end over actual UDP sockets:
#
#   Act 1 (crash): a leased client heartbeats its session while the home
#   replica is SIGKILLed mid-run. The broker must rotate to a survivor
#   (client logs a failover), the run must finish with zero errors, a
#   fresh put/get through the surviving tier must round-trip
#   byte-identically, and `swiftctl mediators` must show the dead replica
#   DOWN, a survivor with failovers >= 1, and zero lapsed leases.
#
#   Act 2 (drain): the new home replica is SIGTERMed while a session is
#   live. swiftd must drain — its exit log counts sessions handed to
#   peers — the client must re-target without a single failed heartbeat,
#   and the last replica standing must still show zero expirations.
set -eu

AGENT_PORT_BASE=19070
MED_PORT_BASE=19060
LEASE_TTL=5s
TMP=$(mktemp -d)
PIDS=
# `kill || true`: replicas killed/drained mid-run are already gone at
# teardown, and under set -e a failing kill in the trap would poison
# the script's exit status.
trap 'kill $PIDS 2>/dev/null || true; rm -rf "$TMP"' EXIT

# Run the built binaries directly (not `go run`) so the cleanup trap
# kills the server processes themselves, not a wrapper.
go build -o "$TMP/swiftd" ./cmd/swiftd
go build -o "$TMP/swiftctl" ./cmd/swiftctl

echo "== boot 4 storage agents"
AGENTS=
MED_AGENTS=
i=0
while [ "$i" -lt 4 ]; do
	port=$((AGENT_PORT_BASE + i))
	"$TMP/swiftd" -port "$port" -mem >"$TMP/agent$i.out" 2>&1 &
	PIDS="$PIDS $!"
	AGENTS="$AGENTS${AGENTS:+,}127.0.0.1:$port"
	MED_AGENTS="$MED_AGENTS${MED_AGENTS:+,}127.0.0.1:$port@400"
	i=$((i + 1))
done

echo "== boot 3 federated mediator-only replicas"
MEDIATORS=
for r in a b c; do
	case $r in
	a) port=$MED_PORT_BASE ;;
	b) port=$((MED_PORT_BASE + 1)) ;;
	c) port=$((MED_PORT_BASE + 2)) ;;
	esac
	MEDIATORS="$MEDIATORS${MEDIATORS:+,}med-$r=127.0.0.1:$port"
done
for r in a b c; do
	case $r in
	a) port=$MED_PORT_BASE ;;
	b) port=$((MED_PORT_BASE + 1)) ;;
	c) port=$((MED_PORT_BASE + 2)) ;;
	esac
	# Peers: the other two replicas.
	peers=$(echo "$MEDIATORS" | tr ',' '\n' | grep -v "^med-$r=" | paste -sd, -)
	"$TMP/swiftd" -mediator "$port" -mediator-name "med-$r" \
		-mediator-peers "$peers" -mediator-agents "$MED_AGENTS" \
		-lease-ttl "$LEASE_TTL" >"$TMP/med-$r.out" 2>&1 &
	case $r in
	a) MPID_A=$! ;;
	b) MPID_B=$! ;;
	c) MPID_C=$! ;;
	esac
	PIDS="$PIDS $!"
done
sleep 0.5

CTL="$TMP/swiftctl -mediators $MEDIATORS -rate 800 -lease-ttl $LEASE_TTL"

medpid() { # medpid med-x -> pid
	case $1 in
	med-a) echo "$MPID_A" ;;
	med-b) echo "$MPID_B" ;;
	med-c) echo "$MPID_C" ;;
	*) echo "unknown replica $1" >&2; exit 1 ;;
	esac
}

# ---- Act 1: SIGKILL the home replica under a live leased session ----

echo "== run a leased, heartbeating client against the tier"
$CTL stats -watch -every 1s -rounds 8 -mb 1 \
	>"$TMP/act1-stats.out" 2>"$TMP/act1-stats.err" &
STATS_PID=$!
sleep 2

HOME_MED=$(grep -o 'via med-[abc]' "$TMP/act1-stats.err" | head -1 | cut -d' ' -f2)
[ -n "$HOME_MED" ] || {
	echo "client never printed its home replica" >&2
	cat "$TMP/act1-stats.err" >&2
	exit 1
}
echo "== SIGKILL the home replica ($HOME_MED) mid-session"
kill -9 "$(medpid "$HOME_MED")"

wait $STATS_PID || {
	echo "leased client failed after the home replica crashed" >&2
	cat "$TMP/act1-stats.err" >&2
	exit 1
}

echo "== client must have re-targeted the lease to a survivor"
grep -q 'mediator failover' "$TMP/act1-stats.err" || {
	echo "client never logged a mediator failover" >&2
	cat "$TMP/act1-stats.err" >&2
	exit 1
}
if grep -q 'mediator heartbeat:' "$TMP/act1-stats.err"; then
	echo "a heartbeat exhausted every replica (lease at risk)" >&2
	cat "$TMP/act1-stats.err" >&2
	exit 1
fi

echo "== put/get through the surviving tier must round-trip"
head -c 1048576 /dev/urandom >"$TMP/payload" 2>/dev/null ||
	dd if=/dev/urandom of="$TMP/payload" bs=4096 count=256 2>/dev/null
$CTL put "$TMP/payload" fo-obj 2>"$TMP/put.err"
grep -q 'via med-' "$TMP/put.err" || {
	echo "put did not report its serving replica" >&2
	cat "$TMP/put.err" >&2
	exit 1
}
$CTL get fo-obj "$TMP/payload.back" 2>/dev/null
cmp "$TMP/payload" "$TMP/payload.back"

echo "== mediators report: dead replica DOWN, survivor adopted, no lapses"
$CTL mediators >"$TMP/act1-meds.out" 2>&1 || true
cat "$TMP/act1-meds.out"
grep -q "^$HOME_MED *DOWN" "$TMP/act1-meds.out" || {
	echo "dead replica not reported DOWN" >&2
	exit 1
}
awk -v dead="$HOME_MED" '
	$1 ~ /^med-/ && $1 != dead && $2 != "DOWN" {
		live++
		fo += $7
		if ($9 != 0) { print "replica " $1 " reaped " $9 " leases" > "/dev/stderr"; bad = 1 }
	}
	END {
		if (live != 2) { print "expected 2 live replicas, saw " live > "/dev/stderr"; exit 1 }
		if (fo < 1) { print "no survivor adopted the session (failovers=0)" > "/dev/stderr"; exit 1 }
		exit bad
	}' "$TMP/act1-meds.out"

# ---- Act 2: SIGTERM (drain) the adopted home under a live session ----

echo "== run another leased client, then drain its home with SIGTERM"
$CTL stats -watch -every 1s -rounds 8 -mb 1 \
	>"$TMP/act2-stats.out" 2>"$TMP/act2-stats.err" &
STATS_PID=$!
sleep 2

DRAIN_MED=$(grep -o 'via med-[abc]' "$TMP/act2-stats.err" | head -1 | cut -d' ' -f2)
[ -n "$DRAIN_MED" ] || {
	echo "act-2 client never printed its home replica" >&2
	cat "$TMP/act2-stats.err" >&2
	exit 1
}
echo "== SIGTERM the home replica ($DRAIN_MED): drain, hand off, exit"
kill -TERM "$(medpid "$DRAIN_MED")"
wait "$(medpid "$DRAIN_MED")" 2>/dev/null || true

grep -q 'mediator drained: [1-9][0-9]* sessions handed to peers' "$TMP/med-${DRAIN_MED#med-}.out" || {
	echo "draining replica handed off no sessions" >&2
	cat "$TMP/med-${DRAIN_MED#med-}.out" >&2
	exit 1
}

wait $STATS_PID || {
	echo "leased client failed across the drain" >&2
	cat "$TMP/act2-stats.err" >&2
	exit 1
}
if grep -q 'mediator heartbeat:' "$TMP/act2-stats.err"; then
	echo "a heartbeat was rejected during the drain" >&2
	cat "$TMP/act2-stats.err" >&2
	exit 1
fi

echo "== last replica standing must still show zero lapsed leases"
$CTL mediators >"$TMP/act2-meds.out" 2>&1 || true
cat "$TMP/act2-meds.out"
awk '
	$1 ~ /^med-/ && $2 != "DOWN" {
		live++
		if ($9 != 0) { print "replica " $1 " reaped " $9 " leases" > "/dev/stderr"; bad = 1 }
	}
	END {
		if (live != 1) { print "expected 1 live replica, saw " live > "/dev/stderr"; exit 1 }
		exit bad
	}' "$TMP/act2-meds.out"

echo "failover smoke OK"
