#!/bin/sh
# Overload-control smoke: boot three swiftd storage agents over real UDP
# with tightly bounded service queues (3 in-flight reads) and an injected
# 5ms per-read service time, then throw six concurrent parity clients at
# them — about 2× the queue capacity. The cluster must degrade
# cooperatively, not collapse:
#
#   - the agents shed the excess explicitly: swift_agent_shed_queue_total
#     and swift_agent_pushbacks_total go nonzero on the metrics endpoints;
#   - shed work fails loudly and recognizably: a surge client either
#     completes or exits with an explicit overload error (shedding load,
#     deadline, retry budget) — never a protocol or data error — and at
#     least one client's transfer must complete (goodput continues);
#   - pushback never feeds failure attribution: all agents stay `healthy`
#     in every completed client's stats snapshot and in a final health
#     probe (zero lifecycle flaps);
#   - data stays exact: an object stored before the surge reads back
#     byte-identical after it.
set -eu

P0=17370
P1=17371
P2=17372
M0=127.0.0.1:19093
M1=127.0.0.1:19094
M2=127.0.0.1:19095
CLIENTS=6
TMP=$(mktemp -d)
PIDS=
trap 'kill $PIDS 2>/dev/null || true; rm -rf "$TMP"' EXIT

fetch() { # fetch URL FILE
	if command -v curl >/dev/null 2>&1; then
		curl -fsS -o "$2" "$1"
	else
		wget -q -O "$2" "$1"
	fi
}

wait_for() { # wait_for URL
	i=0
	while ! fetch "$1" "$TMP/probe" 2>/dev/null; do
		i=$((i + 1))
		[ "$i" -ge 50 ] && { echo "timeout waiting for $1" >&2; exit 1; }
		sleep 0.2
	done
}

# Run the built binaries directly (not `go run`) so the cleanup trap
# kills the server processes themselves, not wrappers.
go build -o "$TMP/swiftd" ./cmd/swiftd
go build -o "$TMP/swiftctl" ./cmd/swiftctl

echo "== three agents: service queues bounded at 3, 5ms injected read service time"
i=0
for port in $P0 $P1 $P2; do
	eval m=\$M$i
	"$TMP/swiftd" -mem -port "$port" -metrics "$m" \
		-max-inflight-reads 3 -read-delay 5ms \
		>"$TMP/swiftd$i.out" 2>&1 &
	PIDS="$PIDS $!"
	i=$((i + 1))
done
for m in $M0 $M1 $M2; do wait_for "http://$m/metrics"; done

AGENTS=127.0.0.1:$P0,127.0.0.1:$P1,127.0.0.1:$P2

echo "== seed object before the surge"
dd if=/dev/urandom of="$TMP/seed" bs=1024 count=512 2>/dev/null
"$TMP/swiftctl" -agents "$AGENTS" -parity put "$TMP/seed" smoke-obj >/dev/null

echo "== surge: $CLIENTS concurrent deadline-carrying clients vs queues of 3"
i=0
while [ "$i" -lt "$CLIENTS" ]; do
	"$TMP/swiftctl" -agents "$AGENTS" -parity -op-timeout 30s -hedge \
		stats -mb 2 >"$TMP/client$i.out" 2>&1 &
	eval "CPID_$i=$!"
	i=$((i + 1))
done

# A client under sustained overdemand either completes or is shed with an
# explicit, recognizable overload error — admission control refusing work
# is correct behavior, silent corruption or protocol failure is not.
completed=0
shed=0
i=0
while [ "$i" -lt "$CLIENTS" ]; do
	eval "p=\$CPID_$i"
	if wait "$p"; then
		completed=$((completed + 1))
	elif grep -Eq 'shedding load|operation deadline|retry budget' "$TMP/client$i.out"; then
		shed=$((shed + 1))
	else
		echo "client $i failed with a non-overload error:" >&2
		cat "$TMP/client$i.out" >&2
		exit 1
	fi
	i=$((i + 1))
done
echo "   clients completed=$completed shed=$shed"
[ "$completed" -ge 1 ] || { echo "every client was shed: goodput collapsed" >&2; exit 1; }

echo "== agents shed the excess explicitly"
qsheds=0
pushed=0
i=0
for m in $M0 $M1 $M2; do
	fetch "http://$m/metrics" "$TMP/metrics$i"
	qsheds=$((qsheds + $(awk '/^swift_agent_shed_queue_total/ {s += $2} END {printf "%d", s}' "$TMP/metrics$i")))
	pushed=$((pushed + $(awk '/^swift_agent_pushbacks_total/ {s += $2} END {printf "%d", s}' "$TMP/metrics$i")))
	i=$((i + 1))
done
echo "   queue sheds=$qsheds pushback replies=$pushed"
[ "$qsheds" -gt 0 ] || { echo "no queue sheds under 2x overdemand" >&2; exit 1; }
[ "$pushed" -gt 0 ] || { echo "no pushback replies under 2x overdemand" >&2; exit 1; }

echo "== pushback never feeds failure attribution"
for f in "$TMP"/client*.out; do
	# Only completed clients printed a stats snapshot; shed ones exited
	# on the overload error before the report.
	grep -q '^overload: pushbacks=' "$f" || continue
	if grep -E 'agent [0-9].*(suspect|down)' "$f"; then
		echo "$f: an agent left healthy under pure overload (lifecycle flap)" >&2
		cat "$f" >&2
		exit 1
	fi
done
"$TMP/swiftctl" -agents "$AGENTS" health >"$TMP/health.out" 2>&1
if grep -E 'suspect|down' "$TMP/health.out"; then
	echo "an agent is unhealthy after the surge:" >&2
	cat "$TMP/health.out" >&2
	exit 1
fi

echo "== object survives the surge byte-identical"
"$TMP/swiftctl" -agents "$AGENTS" -parity get smoke-obj "$TMP/after" >/dev/null
cmp "$TMP/seed" "$TMP/after" || { echo "object differs after the surge" >&2; exit 1; }

echo "overload smoke OK"
