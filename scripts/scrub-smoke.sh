#!/bin/sh
# Data-integrity smoke: boot a parity-protected installation of four
# file-backed, integrity-enveloped storage agents, store an object, rot a
# fragment on disk beneath the envelope, and verify the full maintenance
# story end to end:
#
#   - `swiftctl scrub` detects the damage and exits non-zero;
#   - `swiftctl scrub -repair` heals it from parity and exits zero;
#   - a verification scrub comes back spotless;
#   - the retrieved object is byte-identical to the original;
#   - the corrupted agent's /metrics export counts the corruption.
#
# A second act repeats the story on a five-agent k=2 (3+2 Reed-Solomon)
# volume with TWO fragments rotted in the same stripe row — damage that
# exceeds single XOR — and asserts the same verdict exit codes: detect
# non-zero, repair zero, verification spotless, payload byte-identical.
set -eu

PORT_BASE=18070
METRICS_ADDR=127.0.0.1:19101
TMP=$(mktemp -d)
PIDS=
trap 'kill $PIDS 2>/dev/null || true; rm -rf "$TMP"' EXIT

fetch() { # fetch URL FILE
	if command -v curl >/dev/null 2>&1; then
		curl -fsS -o "$2" "$1"
	else
		wget -q -O "$2" "$1"
	fi
}

# Run the built binaries directly (not `go run`) so the cleanup trap
# kills the server processes themselves, not a wrapper.
go build -o "$TMP/swiftd" ./cmd/swiftd
go build -o "$TMP/swiftctl" ./cmd/swiftctl

echo "== boot 4 integrity-enveloped agents"
AGENTS=
i=0
while [ "$i" -lt 4 ]; do
	port=$((PORT_BASE + i))
	extra=
	[ "$i" -eq 1 ] && extra="-metrics $METRICS_ADDR"
	# shellcheck disable=SC2086
	"$TMP/swiftd" -port "$port" -dir "$TMP/agent$i" -integrity $extra \
		>"$TMP/swiftd$i.out" 2>&1 &
	PIDS="$PIDS $!"
	AGENTS="$AGENTS${AGENTS:+,}127.0.0.1:$port"
	i=$((i + 1))
done
sleep 0.3

CTL="$TMP/swiftctl -agents $AGENTS -parity -unit 4096"

echo "== store an object"
head -c 262144 /dev/urandom >"$TMP/payload" 2>/dev/null ||
	dd if=/dev/urandom of="$TMP/payload" bs=4096 count=64 2>/dev/null
$CTL put "$TMP/payload" smoke-obj

echo "== baseline scrub must be clean"
$CTL scrub smoke-obj

echo "== rot agent 1's fragment beneath the envelope"
FRAG="$TMP/agent1/smoke-obj"
[ -f "$FRAG" ] || { echo "fragment $FRAG not found" >&2; ls "$TMP/agent1" >&2; exit 1; }
# 16 bytes of 0xFF into the middle of a data block (past the 16-byte
# block header), guaranteed to disagree with random payload somewhere.
printf '\377\377\377\377\377\377\377\377\377\377\377\377\377\377\377\377' |
	dd of="$FRAG" bs=1 seek=5000 count=16 conv=notrunc 2>/dev/null

echo "== scrub must detect the rot and refuse silently passing"
if $CTL scrub smoke-obj >"$TMP/scrub.out" 2>&1; then
	echo "scrub exited 0 over corrupt media" >&2
	cat "$TMP/scrub.out" >&2
	exit 1
fi
grep -q 'corrupt=[1-9]' "$TMP/scrub.out" || {
	echo "scrub did not report corruption" >&2
	cat "$TMP/scrub.out" >&2
	exit 1
}

echo "== scrub -repair must heal from parity"
$CTL scrub -repair smoke-obj | tee "$TMP/repair.out"
grep -q 'repaired=[1-9]' "$TMP/repair.out" || {
	echo "repair pass repaired nothing" >&2
	exit 1
}

echo "== verification scrub must be spotless"
$CTL scrub smoke-obj | tee "$TMP/verify.out"
grep -q 'corrupt=0 parity_mismatch=0 repaired=0 unrepairable=0 skipped=0' "$TMP/verify.out" || {
	echo "verification scrub not clean" >&2
	exit 1
}

echo "== retrieved object must match the original byte for byte"
$CTL get smoke-obj "$TMP/payload.back"
cmp "$TMP/payload" "$TMP/payload.back"

echo "== corrupted agent's export must count the corruption"
fetch "http://$METRICS_ADDR/metrics" "$TMP/agent.metrics"
grep -q 'swift_store_corruptions_total [1-9]' "$TMP/agent.metrics" || {
	echo "swift_store_corruptions_total never advanced" >&2
	grep swift_store "$TMP/agent.metrics" >&2 || true
	exit 1
}

# ---- Act 2: a 3+2 Reed-Solomon volume survives double corruption ----

echo "== boot 5 integrity-enveloped agents for the k=2 volume"
RS_PORT_BASE=18080
RS_AGENTS=
i=0
while [ "$i" -lt 5 ]; do
	port=$((RS_PORT_BASE + i))
	"$TMP/swiftd" -port "$port" -dir "$TMP/rs-agent$i" -integrity \
		>"$TMP/rs-swiftd$i.out" 2>&1 &
	PIDS="$PIDS $!"
	RS_AGENTS="$RS_AGENTS${RS_AGENTS:+,}127.0.0.1:$port"
	i=$((i + 1))
done
sleep 0.3

RSCTL="$TMP/swiftctl -agents $RS_AGENTS -parity-shards 2 -unit 4096"

echo "== store an object on the 3+2 volume"
$RSCTL put "$TMP/payload" rs-obj

echo "== stat must report the 3+2 scheme"
$RSCTL stat rs-obj | tee "$TMP/rs-stat.out"
grep -Fq 'scheme=3+2' "$TMP/rs-stat.out" || {
	echo "stat did not report the 3+2 scheme" >&2
	exit 1
}

echo "== baseline k=2 scrub must be clean and exit zero"
$RSCTL scrub rs-obj

echo "== rot TWO fragments in the same stripe row (beyond single XOR)"
for a in 1 2; do
	FRAG="$TMP/rs-agent$a/rs-obj"
	[ -f "$FRAG" ] || { echo "fragment $FRAG not found" >&2; exit 1; }
	printf '\377\377\377\377\377\377\377\377\377\377\377\377\377\377\377\377' |
		dd of="$FRAG" bs=1 seek=5000 count=16 conv=notrunc 2>/dev/null
done

echo "== k=2 scrub must detect the double rot and exit non-zero"
if $RSCTL scrub rs-obj >"$TMP/rs-scrub.out" 2>&1; then
	echo "scrub exited 0 over doubly-corrupt media" >&2
	cat "$TMP/rs-scrub.out" >&2
	exit 1
fi
grep -q 'corrupt=[1-9]' "$TMP/rs-scrub.out" || {
	echo "k=2 scrub did not report corruption" >&2
	cat "$TMP/rs-scrub.out" >&2
	exit 1
}

echo "== k=2 scrub -repair must heal both units and exit zero"
$RSCTL scrub -repair rs-obj | tee "$TMP/rs-repair.out"
grep -q 'repaired=[1-9]' "$TMP/rs-repair.out" || {
	echo "k=2 repair pass repaired nothing" >&2
	exit 1
}
grep -q 'unrepairable=0' "$TMP/rs-repair.out" || {
	echo "k=2 repair pass left unrepairable units" >&2
	exit 1
}

echo "== k=2 verification scrub must be spotless"
$RSCTL scrub rs-obj | tee "$TMP/rs-verify.out"
grep -q 'corrupt=0 parity_mismatch=0 repaired=0 unrepairable=0 skipped=0' "$TMP/rs-verify.out" || {
	echo "k=2 verification scrub not clean" >&2
	exit 1
}

echo "== retrieved k=2 object must match the original byte for byte"
$RSCTL get rs-obj "$TMP/payload.rs.back"
cmp "$TMP/payload" "$TMP/payload.rs.back"

echo "scrub smoke OK"
