#!/bin/sh
# Data-integrity smoke: boot a parity-protected installation of four
# file-backed, integrity-enveloped storage agents, store an object, rot a
# fragment on disk beneath the envelope, and verify the full maintenance
# story end to end:
#
#   - `swiftctl scrub` detects the damage and exits non-zero;
#   - `swiftctl scrub -repair` heals it from parity and exits zero;
#   - a verification scrub comes back spotless;
#   - the retrieved object is byte-identical to the original;
#   - the corrupted agent's /metrics export counts the corruption.
set -eu

PORT_BASE=18070
METRICS_ADDR=127.0.0.1:19101
TMP=$(mktemp -d)
PIDS=
trap 'kill $PIDS 2>/dev/null; rm -rf "$TMP"' EXIT

fetch() { # fetch URL FILE
	if command -v curl >/dev/null 2>&1; then
		curl -fsS -o "$2" "$1"
	else
		wget -q -O "$2" "$1"
	fi
}

# Run the built binaries directly (not `go run`) so the cleanup trap
# kills the server processes themselves, not a wrapper.
go build -o "$TMP/swiftd" ./cmd/swiftd
go build -o "$TMP/swiftctl" ./cmd/swiftctl

echo "== boot 4 integrity-enveloped agents"
AGENTS=
i=0
while [ "$i" -lt 4 ]; do
	port=$((PORT_BASE + i))
	extra=
	[ "$i" -eq 1 ] && extra="-metrics $METRICS_ADDR"
	# shellcheck disable=SC2086
	"$TMP/swiftd" -port "$port" -dir "$TMP/agent$i" -integrity $extra \
		>"$TMP/swiftd$i.out" 2>&1 &
	PIDS="$PIDS $!"
	AGENTS="$AGENTS${AGENTS:+,}127.0.0.1:$port"
	i=$((i + 1))
done
sleep 0.3

CTL="$TMP/swiftctl -agents $AGENTS -parity -unit 4096"

echo "== store an object"
head -c 262144 /dev/urandom >"$TMP/payload" 2>/dev/null ||
	dd if=/dev/urandom of="$TMP/payload" bs=4096 count=64 2>/dev/null
$CTL put "$TMP/payload" smoke-obj

echo "== baseline scrub must be clean"
$CTL scrub smoke-obj

echo "== rot agent 1's fragment beneath the envelope"
FRAG="$TMP/agent1/smoke-obj"
[ -f "$FRAG" ] || { echo "fragment $FRAG not found" >&2; ls "$TMP/agent1" >&2; exit 1; }
# 16 bytes of 0xFF into the middle of a data block (past the 16-byte
# block header), guaranteed to disagree with random payload somewhere.
printf '\377\377\377\377\377\377\377\377\377\377\377\377\377\377\377\377' |
	dd of="$FRAG" bs=1 seek=5000 count=16 conv=notrunc 2>/dev/null

echo "== scrub must detect the rot and refuse silently passing"
if $CTL scrub smoke-obj >"$TMP/scrub.out" 2>&1; then
	echo "scrub exited 0 over corrupt media" >&2
	cat "$TMP/scrub.out" >&2
	exit 1
fi
grep -q 'corrupt=[1-9]' "$TMP/scrub.out" || {
	echo "scrub did not report corruption" >&2
	cat "$TMP/scrub.out" >&2
	exit 1
}

echo "== scrub -repair must heal from parity"
$CTL scrub -repair smoke-obj | tee "$TMP/repair.out"
grep -q 'repaired=[1-9]' "$TMP/repair.out" || {
	echo "repair pass repaired nothing" >&2
	exit 1
}

echo "== verification scrub must be spotless"
$CTL scrub smoke-obj | tee "$TMP/verify.out"
grep -q 'corrupt=0 parity_mismatch=0 repaired=0 unrepairable=0 skipped=0' "$TMP/verify.out" || {
	echo "verification scrub not clean" >&2
	exit 1
}

echo "== retrieved object must match the original byte for byte"
$CTL get smoke-obj "$TMP/payload.back"
cmp "$TMP/payload" "$TMP/payload.back"

echo "== corrupted agent's export must count the corruption"
fetch "http://$METRICS_ADDR/metrics" "$TMP/agent.metrics"
grep -q 'swift_store_corruptions_total [1-9]' "$TMP/agent.metrics" || {
	echo "swift_store_corruptions_total never advanced" >&2
	grep swift_store "$TMP/agent.metrics" >&2 || true
	exit 1
}

echo "scrub smoke OK"
