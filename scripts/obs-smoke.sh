#!/bin/sh
# Observability smoke: boot the load harness and a storage agent daemon
# with their HTTP telemetry endpoints, and verify that live series from
# every layer (client, modeled network, storage agent) are scrapeable in
# both export formats while traffic is flowing.
set -eu

LOAD_ADDR=127.0.0.1:19090
AGENT_ADDR=127.0.0.1:19091
TMP=$(mktemp -d)
LOAD_PID=
SWIFTD_PID=
trap 'kill $LOAD_PID $SWIFTD_PID 2>/dev/null || true; rm -rf "$TMP"' EXIT

fetch() { # fetch URL FILE
	if command -v curl >/dev/null 2>&1; then
		curl -fsS -o "$2" "$1"
	else
		wget -q -O "$2" "$1"
	fi
}

wait_for() { # wait_for URL
	i=0
	while ! fetch "$1" "$TMP/probe" 2>/dev/null; do
		i=$((i + 1))
		[ "$i" -ge 50 ] && { echo "timeout waiting for $1" >&2; exit 1; }
		sleep 0.2
	done
}

# Run the built binaries directly (not `go run`) so the cleanup trap
# kills the server processes themselves, not a wrapper.
go build -o "$TMP/swift-load" ./cmd/swift-load
go build -o "$TMP/swiftd" ./cmd/swiftd

echo "== swift-load telemetry endpoint"
"$TMP/swift-load" -requests 1500 -rate 40 -metrics "$LOAD_ADDR" \
	>"$TMP/load.out" 2>&1 &
LOAD_PID=$!

echo "== swiftd telemetry endpoint"
"$TMP/swiftd" -mem -port 17070 -metrics "$AGENT_ADDR" \
	>"$TMP/swiftd.out" 2>&1 &
SWIFTD_PID=$!

wait_for "http://$LOAD_ADDR/metrics"

# The load must be observable mid-flight: poll until the client write
# series (advancing from the prefill phase onward) has moved past zero.
i=0
while :; do
	fetch "http://$LOAD_ADDR/metrics" "$TMP/metrics"
	grep -q 'swift_client_write_seconds_count [1-9]' "$TMP/metrics" && break
	i=$((i + 1))
	[ "$i" -ge 100 ] && { echo "client series never advanced" >&2; cat "$TMP/metrics" >&2; exit 1; }
	sleep 0.2
done

for series in \
	swift_client_read_seconds \
	swift_client_agent_read_bursts_total \
	swift_net_frames_total \
	swift_net_utilization; do
	grep -q "$series" "$TMP/metrics" || { echo "missing $series" >&2; exit 1; }
done
# Prometheus text framing.
grep -q '^# TYPE swift_client_read_seconds summary' "$TMP/metrics"

fetch "http://$LOAD_ADDR/metrics?format=json" "$TMP/metrics.json"
grep -q '"name":"swift_client_read_seconds"' "$TMP/metrics.json"
fetch "http://$LOAD_ADDR/trace" "$TMP/trace"
fetch "http://$LOAD_ADDR/debug/pprof/" "$TMP/pprof"
grep -q goroutine "$TMP/pprof"

wait_for "http://$AGENT_ADDR/metrics"
fetch "http://$AGENT_ADDR/metrics" "$TMP/agent.metrics"
for series in swift_agent_sessions swift_udp_packets_in_total; do
	grep -q "$series" "$TMP/agent.metrics" || { echo "missing $series (swiftd)" >&2; exit 1; }
done

# The load run itself must finish cleanly and print its telemetry epilogue.
wait "$LOAD_PID"
LOAD_PID=
grep -q 'protocol:' "$TMP/load.out"
grep -q '^net ' "$TMP/load.out"

echo "observability smoke OK"
