// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out and micro-benchmarks
// of the hot paths. Each evaluation benchmark reports the paper's metric
// via b.ReportMetric:
//
//	Tables 1-4, tcp:  modeled data-rates in KB/s (paper tables' cells)
//	Figure 3, 4:      mean response time in ms at a reference load
//	Figure 5, 6:      max sustainable data-rate in MB/s at 32 disks
//
// The full sweeps (all loads, all disk counts, eight samples) live in
// cmd/swift-bench and cmd/swift-sim; these benchmarks run one
// representative cell each so `go test -bench` stays tractable.
package swift_test

import (
	"math/rand"
	"testing"
	"time"

	"swift/internal/bench"
	"swift/internal/parity"
	"swift/internal/simswift"
	"swift/internal/stripe"
	"swift/internal/wire"
)

const benchSizeMB = 2

// reportSwift runs b.N write+read samples on a cluster configuration and
// reports the modeled rates.
func reportSwift(b *testing.B, opts bench.Options) {
	b.Helper()
	var readSum, writeSum float64
	for i := 0; i < b.N; i++ {
		r, w, err := bench.MeasureSwift(opts, benchSizeMB, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		readSum += r
		writeSum += w
	}
	b.ReportMetric(readSum/float64(b.N), "readKB/s")
	b.ReportMetric(writeSum/float64(b.N), "writeKB/s")
}

// BenchmarkTable1SwiftOneEthernet regenerates Table 1's cell: Swift with
// three storage agents on one 10 Mb/s Ethernet (paper: reads ≈876-897,
// writes ≈860-882 KB/s).
func BenchmarkTable1SwiftOneEthernet(b *testing.B) {
	reportSwift(b, bench.Options{Agents: 3, Segments: 1})
}

// BenchmarkTable2LocalSCSI regenerates Table 2: the local SCSI disk
// (paper: reads ≈654-682, synchronous writes ≈314-316 KB/s).
func BenchmarkTable2LocalSCSI(b *testing.B) {
	var readSum, writeSum float64
	for i := 0; i < b.N; i++ {
		r, w, err := bench.MeasureSCSI(benchSizeMB, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		readSum += r
		writeSum += w
	}
	b.ReportMetric(readSum/float64(b.N), "readKB/s")
	b.ReportMetric(writeSum/float64(b.N), "writeKB/s")
}

// BenchmarkTable3NFS regenerates Table 3: the NFS server baseline
// (paper: reads ≈456-488, write-through writes ≈109-112 KB/s).
func BenchmarkTable3NFS(b *testing.B) {
	var readSum, writeSum float64
	for i := 0; i < b.N; i++ {
		r, w, err := bench.MeasureNFS(bench.Options{}, benchSizeMB, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		readSum += r
		writeSum += w
	}
	b.ReportMetric(readSum/float64(b.N), "readKB/s")
	b.ReportMetric(writeSum/float64(b.N), "writeKB/s")
}

// BenchmarkTable4SwiftTwoEthernets regenerates Table 4: six agents over
// two segments (paper: reads ≈1120-1150, writes ≈1660-1670 KB/s).
func BenchmarkTable4SwiftTwoEthernets(b *testing.B) {
	reportSwift(b, bench.Options{Agents: 6, Segments: 2})
}

// BenchmarkAblationTCPvsUDP regenerates §3's observation: the TCP-based
// first prototype never exceeded 45% of the Ethernet's capacity.
func BenchmarkAblationTCPvsUDP(b *testing.B) {
	reportSwift(b, bench.Options{Agents: 3, Segments: 1, StreamClient: true})
}

// BenchmarkAblationParity measures the computed-copy redundancy cost.
func BenchmarkAblationParity(b *testing.B) {
	reportSwift(b, bench.Options{Agents: 4, Parity: true})
}

// BenchmarkAblationStripeUnit4K measures a small striping unit (the
// mediator's high-parallelism choice).
func BenchmarkAblationStripeUnit4K(b *testing.B) {
	reportSwift(b, bench.Options{Agents: 3, Unit: 4 << 10})
}

// BenchmarkAblationReadWindow measures the literal one-packet-per-request
// read rule of the prototype.
func BenchmarkAblationReadWindow(b *testing.B) {
	reportSwift(b, bench.Options{Agents: 3, RequestBytes: 1364})
}

// BenchmarkAblationAgents4 measures the saturating fourth agent.
func BenchmarkAblationAgents4(b *testing.B) {
	reportSwift(b, bench.Options{Agents: 4, Segments: 1})
}

// BenchmarkAblationReadAhead measures the client read-ahead window on an
// 8 KB sequential-read workload.
func BenchmarkAblationReadAhead(b *testing.B) {
	var sum float64
	for i := 0; i < b.N; i++ {
		s, err := bench.AblationReadAhead(bench.RunConfig{
			Samples: 1, SizesMB: []int{benchSizeMB}, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		sum += s.Read[len(s.Read)-1].Mean / s.Read[0].Mean
	}
	b.ReportMetric(sum/float64(b.N), "speedup")
}

// BenchmarkExtensionEDF runs the §6.1.2 deadline-scheduling extension at
// one contested load and reports both schedulers' miss fractions.
func BenchmarkExtensionEDF(b *testing.B) {
	var fifoMiss, edfMiss float64
	for i := 0; i < b.N; i++ {
		mk := func(edf bool) simswift.RTResult {
			return simswift.RunRT(simswift.RTConfig{
				Disks: 4,
				Base: simswift.Config{
					Drive:        simswift.Figure3Drive(),
					Unit:         32 * simswift.KB,
					RequestBytes: 256 * simswift.KB,
					Seed:         int64(i + 1),
				},
				Streams:        1,
				StreamBytes:    128 * simswift.KB,
				Period:         250 * time.Millisecond,
				Periods:        150,
				BackgroundRate: 12,
				EDF:            edf,
			})
		}
		fifoMiss += mk(false).MissFraction
		edfMiss += mk(true).MissFraction
	}
	b.ReportMetric(fifoMiss/float64(b.N)*100, "fifo-miss%")
	b.ReportMetric(edfMiss/float64(b.N)*100, "edf-miss%")
}

// BenchmarkExtensionParitySim runs the §6.1.1 simulator enhancement:
// write response with computed-copy redundancy.
func BenchmarkExtensionParitySim(b *testing.B) {
	var over float64
	for i := 0; i < b.N; i++ {
		plain, par := simswift.ParityImpact(8, 32*simswift.KB, 512*simswift.KB, 2)
		over += float64(par.MeanResponse)/float64(plain.MeanResponse) - 1
	}
	b.ReportMetric(over/float64(b.N)*100, "overhead%")
}

// BenchmarkFigure3ResponseVsLoad runs Figure 3's reference cell: 32 disks,
// 32 KB units, 1 MB requests at 20 req/s (paper: response well under the
// knee, ≈50-80 ms).
func BenchmarkFigure3ResponseVsLoad(b *testing.B) {
	var sum float64
	for i := 0; i < b.N; i++ {
		cfg := simswift.Figure3Config(32, 32*simswift.KB)
		cfg.Requests = 600
		cfg.Seed = int64(i + 1)
		r := simswift.Run(cfg, 20)
		sum += float64(r.MeanResponse.Milliseconds())
	}
	b.ReportMetric(sum/float64(b.N), "resp-ms")
}

// BenchmarkFigure4ResponseVsLoad runs Figure 4's reference cell: 16 disks,
// 4 KB units, 128 KB requests on the 1.5 MB/s drive at 10 req/s.
func BenchmarkFigure4ResponseVsLoad(b *testing.B) {
	var sum float64
	for i := 0; i < b.N; i++ {
		cfg := simswift.Figure4Config(16)
		cfg.Requests = 600
		cfg.Seed = int64(i + 1)
		r := simswift.Run(cfg, 10)
		sum += float64(r.MeanResponse.Milliseconds())
	}
	b.ReportMetric(sum/float64(b.N), "resp-ms")
}

// BenchmarkFigure5MaxRate4K runs Figure 5's headline point: maximum
// sustainable data-rate at 32 disks with 4 KB units (paper: ≈2 MB/s).
func BenchmarkFigure5MaxRate4K(b *testing.B) {
	var sum float64
	for i := 0; i < b.N; i++ {
		cfg := simswift.Figure5Config(simswift.Figure3Drive(), 32)
		cfg.Requests = 500
		cfg.Seed = int64(i + 1)
		rate, _ := simswift.MaxSustainableRate(cfg)
		sum += rate / 1e6
	}
	b.ReportMetric(sum/float64(b.N), "MB/s")
}

// BenchmarkFigure6MaxRate32K runs Figure 6's headline point: 32 disks
// with 32 KB units and 1 MB requests (paper: ≈12 MB/s).
func BenchmarkFigure6MaxRate32K(b *testing.B) {
	var sum float64
	for i := 0; i < b.N; i++ {
		cfg := simswift.Figure6Config(simswift.Figure3Drive(), 32)
		cfg.Requests = 500
		cfg.Seed = int64(i + 1)
		rate, _ := simswift.MaxSustainableRate(cfg)
		sum += rate / 1e6
	}
	b.ReportMetric(sum/float64(b.N), "MB/s")
}

// Micro-benchmarks of the hot paths.

func BenchmarkWireMarshal(b *testing.B) {
	payload := make([]byte, wire.MaxPayload)
	p := &wire.Packet{
		Header:  wire.Header{Type: wire.TData, ReqID: 1, Handle: 2, Offset: 3, Length: uint32(len(payload))},
		Payload: payload,
	}
	buf := make([]byte, 0, wire.MaxPacket)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := wire.AppendPacket(buf[:0], p)
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

func BenchmarkWireUnmarshal(b *testing.B) {
	payload := make([]byte, wire.MaxPayload)
	buf, _ := wire.Marshal(&wire.Packet{
		Header:  wire.Header{Type: wire.TData, Length: uint32(len(payload))},
		Payload: payload,
	})
	var p wire.Packet
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wire.Unmarshal(buf, &p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParityXOR(b *testing.B) {
	dst := make([]byte, 32<<10)
	src := make([]byte, 32<<10)
	rand.New(rand.NewSource(1)).Read(src)
	b.SetBytes(int64(len(dst)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parity.XOR(dst, src)
	}
}

func BenchmarkStripeRuns(b *testing.B) {
	l := stripe.Layout{Unit: 32 << 10, Agents: 8, Parity: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runs := l.Runs(12345, 4<<20)
		if len(runs) == 0 {
			b.Fatal("no runs")
		}
	}
}

func BenchmarkStripeLocate(b *testing.B) {
	l := stripe.Layout{Unit: 32 << 10, Agents: 8, Parity: true}
	var sink int64
	for i := 0; i < b.N; i++ {
		a, off := l.Locate(int64(i) * 7919)
		sink += int64(a) + off
	}
	_ = sink
}
