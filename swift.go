// Package swift is a Go implementation of the Swift I/O architecture from
// Cabrera & Long, "Exploiting Multiple I/O Streams to Provide High
// Data-Rates" (USENIX 1991).
//
// Swift addresses data-rate mismatches between applications, storage
// devices, and the interconnect by striping objects over many (slow)
// storage agents and driving them in parallel, presenting the aggregate as
// one fast logical store with Unix file semantics. The package provides:
//
//   - the distribution agent (client library): Open/Create/Read/Write/
//     Seek/Close on striped objects over a light-weight datagram protocol;
//   - the storage agent server (StartAgent), deployable over real UDP or
//     the in-memory modeled network in internal/transport/memnet;
//   - computed-copy redundancy: rotating parity — single XOR or an m+k
//     Reed–Solomon scheme (internal/ec) — with degraded-mode operation
//     and fragment rebuild through up to k simultaneous failures;
//   - a storage mediator (internal/mediator) that reserves agent and
//     network capacity and picks striping parameters from a client's
//     data-rate requirement.
//
// # Quickstart
//
//	host := udpnet.NewHost("127.0.0.1")
//	// start three storage agents (normally separate machines)
//	for i := 0; i < 3; i++ {
//	    st := store.NewMem()
//	    a, _ := agent.New(host, st, agent.Config{Port: fmt.Sprint(7070+i)})
//	    defer a.Close()
//	}
//	fs, _ := swift.Dial(swift.Config{
//	    Host:   host,
//	    Agents: []string{"127.0.0.1:7070", "127.0.0.1:7071", "127.0.0.1:7072"},
//	})
//	f, _ := fs.Create("demo")
//	f.Write([]byte("striped across three servers"))
//	f.Close()
//
// See the examples directory for complete programs.
package swift

import (
	"fmt"
	"time"

	"swift/internal/agent"
	"swift/internal/cache"
	"swift/internal/core"
	"swift/internal/integrity"
	"swift/internal/mediator"
	"swift/internal/obs"
	"swift/internal/store"
	"swift/internal/transport"
)

// Config configures a Swift client (the distribution agent).
type Config struct {
	// Host is the client machine's network attachment.
	Host transport.Host
	// Agents lists the storage agents' control addresses ("host:port").
	// Order matters: it defines the striping order.
	Agents []string
	// StripeUnit is the striping unit in bytes (default 32 KiB).
	StripeUnit int64
	// Parity enables computed-copy redundancy (requires >= 3 agents):
	// rotating parity units per stripe row. With ParityShards unset this
	// is the paper's single XOR computed copy, tolerating one failed
	// agent.
	Parity bool
	// ParityShards selects the m+k erasure scheme: the number of parity
	// units per stripe row (k), each on its own agent. Zero with Parity
	// set means 1 (plain XOR); 2 or more selects Reed–Solomon coding
	// tolerating that many simultaneous agent failures. Setting it
	// implies Parity. Requires len(Agents) >= ParityShards+2.
	ParityShards int
	// DataShards, when non-zero, asserts the number of data units per
	// stripe row (m). It is always len(Agents)-ParityShards; Dial
	// rejects a mismatch so a misconfigured agent list fails loudly
	// instead of silently changing the layout.
	DataShards int
	// SyncWrites makes agents commit each write burst to stable storage
	// before acknowledging.
	SyncWrites bool
	// RequestBytes, WriteWindow, RetryTimeout and MaxRetries tune the
	// data-transfer protocol; zero values select defaults.
	RequestBytes int64
	WriteWindow  int
	RetryTimeout time.Duration
	MaxRetries   int
	// ReadAhead fetches sequential reads in windows of this many bytes
	// (0 disables). Small sequential readers gain large-burst rates;
	// detected sequential streams are additionally prefetched
	// asynchronously into the block cache ahead of the reader.
	ReadAhead int64
	// ReadAheadStreams bounds how many concurrent sequential streams get
	// asynchronous read-ahead (default 2). More streams pipeline more
	// concurrent readers at the cost of agent-side interleaving.
	ReadAheadStreams int
	// CacheSize bounds the client block cache in bytes. Zero auto-sizes
	// from ReadAhead and WriteBehindMax (at least 8 MiB when any caching
	// feature is on); negative disables the cache tier entirely.
	CacheSize int64
	// WriteBehindMax, when > 0, absorbs writes into the cache and flushes
	// them to the agents in the background, bounding dirty bytes at this
	// budget. Sync, Seek-free sequential writers gain full-window bursts;
	// Close and Sync still guarantee durability before returning.
	WriteBehindMax int64
	// CacheSync, when non-nil, is the cache-coherence hook: called once
	// per health round (and on Close) with the cache's resident objects
	// and this client's recent writes, it returns the entries that are
	// stale and must be invalidated. Wire a MediatorBroker's CacheSync
	// here so the mediator tier propagates cross-client invalidations.
	CacheSync func(cached []CachedObject, written []string) ([]CachedObject, error)
	// WritePace inserts a delay between outgoing data packets (the
	// prototype's kernel-friendly wait loop); Sleep implements it.
	WritePace time.Duration
	Sleep     func(time.Duration)
	// HealthInterval, when > 0, starts the background health monitor:
	// every interval it probes all agents, demotes silent ones through the
	// failure-domain lifecycle (healthy → suspect → down), and re-admits
	// recovered ones automatically — reopening each open file's sessions
	// and, with AutoRebuild, reconstructing the agent's fragments from
	// parity first.
	HealthInterval time.Duration
	// AutoRebuild makes re-admission rebuild a returning agent's
	// fragments from the survivors before it serves reads again
	// (requires Parity).
	AutoRebuild bool
	// ScrubInterval, when > 0 together with HealthInterval, runs a
	// background scrub over every open file at this period: each stripe
	// row is read from all agents, verified against the integrity
	// envelope and the parity equation, and (with Parity) repaired in
	// place — corrupt units rewritten from the XOR of their peers, stale
	// parity recomputed from the data.
	ScrubInterval time.Duration
	// OpTimeout, when > 0, gives every ReadAt/WriteAt a deadline budget.
	// The remaining budget travels on each request packet, so agents shed
	// work the client has already abandoned; an op past its budget fails
	// with core.ErrDeadline without marking any agent failed.
	OpTimeout time.Duration
	// HedgeReads races a parity reconstruction against a straggling agent
	// once a read burst exceeds a p99-derived hedge delay (requires
	// Parity). Hedges spend the retry budget, so a broadly slow cluster
	// cannot amplify load.
	HedgeReads bool
	// HedgeMultiplier scales the observed p99 read-burst latency into the
	// hedge delay (default 2).
	HedgeMultiplier float64
	// RetryBudgetCap and RetryBudgetRatio bound retry amplification: a
	// token bucket holding at most Cap tokens, refilled by Ratio per
	// fresh operation, pays for every failover retry and hedge. Defaults
	// 1000 and 0.5.
	RetryBudgetCap   float64
	RetryBudgetRatio float64
	// BreakerThreshold consecutive overload signals (pushbacks, retry
	// give-ups) trip an agent's circuit breaker open for BreakerCooldown;
	// while open, parity-protected reads reconstruct around the agent
	// instead of waiting on it. Defaults 5 and 2s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Heartbeat, when non-nil together with HealthInterval, is invoked
	// once per health-probe round — the hook for renewing a storage
	// mediator session lease (mediator.Renew) while this client lives.
	Heartbeat func()
	// Logf receives diagnostics.
	Logf func(format string, args ...any)
	// Verbose additionally routes burst-level trace events (failovers,
	// timeouts, lifecycle transitions) to Logf, prefixed "trace:".
	Verbose bool
	// Obs, when non-nil, is the metric registry the client registers its
	// telemetry in, for export over HTTP (see internal/obs.Serve). Nil
	// gets a private registry; telemetry is always recorded and available
	// through FS.Stats.
	Obs *obs.Registry
	// TraceRate enables distributed tracing: every client operation
	// (open, read, write, sync, scrub) records a span tree across the
	// client's internal layers and — over the wire — the storage agents
	// and mediator replicas serving it. Rate is the head-sampling
	// probability in [0,1]; independent of it, the tail sampler keeps
	// ops that errored, retried (timeouts, resends, repairs, failovers),
	// or ran slower than the operation's live p99. Zero disables tracing
	// with no per-packet cost.
	TraceRate float64
	// Tracer, when non-nil, overrides TraceRate: the client joins an
	// existing tracer (shared with in-process agents or mediators, so
	// one collector assembles the full cross-layer tree).
	Tracer *obs.Tracer
}

// FS is a handle to a striped object store: the Swift distribution agent.
type FS struct {
	c *core.Client
}

// File is an open striped object with Unix file semantics: it implements
// io.Reader, io.Writer, io.Seeker, io.ReaderAt, io.WriterAt and io.Closer.
type File = core.File

// OpenFlags control FS.OpenFile.
type OpenFlags = core.OpenFlags

// Dial creates a Swift client for the given agent set.
func Dial(cfg Config) (*FS, error) {
	if cfg.DataShards > 0 {
		k := cfg.ParityShards
		if k == 0 && cfg.Parity {
			k = 1
		}
		if cfg.DataShards+k != len(cfg.Agents) {
			return nil, fmt.Errorf("swift: %d data + %d parity shards need %d agents, have %d",
				cfg.DataShards, k, cfg.DataShards+k, len(cfg.Agents))
		}
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(obs.TracerConfig{Rate: cfg.TraceRate})
		tracer.Register(cfg.Obs)
	}
	c, err := core.Dial(core.Config{
		Host:         cfg.Host,
		Agents:       cfg.Agents,
		Unit:         cfg.StripeUnit,
		Parity:       cfg.Parity,
		ParityShards: cfg.ParityShards,
		SyncWrites:   cfg.SyncWrites,
		RequestBytes: cfg.RequestBytes,
		WriteWindow:  cfg.WriteWindow,
		RetryTimeout: cfg.RetryTimeout,
		MaxRetries:   cfg.MaxRetries,
		ReadAhead:    cfg.ReadAhead,
		WritePace:    cfg.WritePace,
		Sleep:        cfg.Sleep,

		ReadAheadStreams: cfg.ReadAheadStreams,
		CacheSize:        cfg.CacheSize,
		WriteBehindMax:   cfg.WriteBehindMax,
		CacheSync:        cfg.CacheSync,

		OpTimeout:        cfg.OpTimeout,
		HedgeReads:       cfg.HedgeReads,
		HedgeMultiplier:  cfg.HedgeMultiplier,
		RetryBudgetCap:   cfg.RetryBudgetCap,
		RetryBudgetRatio: cfg.RetryBudgetRatio,
		BreakerThreshold: cfg.BreakerThreshold,
		BreakerCooldown:  cfg.BreakerCooldown,

		Logf:    cfg.Logf,
		Verbose: cfg.Verbose,
		Obs:     cfg.Obs,
		Tracer:  tracer,
	})
	if err != nil {
		return nil, err
	}
	if cfg.HealthInterval > 0 {
		if err := c.StartMonitor(core.MonitorConfig{
			Interval:      cfg.HealthInterval,
			Rebuild:       cfg.AutoRebuild,
			ScrubInterval: cfg.ScrubInterval,
			Heartbeat:     cfg.Heartbeat,
		}); err != nil {
			c.Close()
			return nil, err
		}
	}
	return &FS{c: c}, nil
}

// Open opens an existing object for reading and writing.
func (fs *FS) Open(name string) (*File, error) {
	return fs.c.Open(name, core.OpenFlags{})
}

// Create opens an object, creating it if absent and truncating it
// otherwise.
func (fs *FS) Create(name string) (*File, error) {
	return fs.c.Open(name, core.OpenFlags{Create: true, Truncate: true})
}

// OpenFile opens an object with explicit flags.
func (fs *FS) OpenFile(name string, flags OpenFlags) (*File, error) {
	return fs.c.Open(name, flags)
}

// Stat returns the logical size of the named object.
func (fs *FS) Stat(name string) (int64, error) { return fs.c.Stat(name) }

// Remove deletes the named object from all agents.
func (fs *FS) Remove(name string) error { return fs.c.Remove(name) }

// List returns the names of all objects, sorted.
func (fs *FS) List() ([]string, error) { return fs.c.List() }

// AgentStatus is one storage agent's health probe result.
type AgentStatus = core.AgentStatus

// Ping probes every agent and returns their statuses in agent order.
func (fs *FS) Ping() []AgentStatus { return fs.c.Ping() }

// MarkDown forces agent i failed (true) or restored (false). The
// failure-domain lifecycle normally manages agent states automatically
// (see Health); MarkDown remains for drills and administrative fencing.
func (fs *FS) MarkDown(i int, down bool) { fs.c.MarkDown(i, down) }

// Down reports whether agent i is in the down state.
func (fs *FS) Down(i int) bool { return fs.c.Down(i) }

// AgentState is one agent's position in the failure-domain lifecycle:
// healthy, suspect, or down.
type AgentState = core.AgentState

// Lifecycle states.
const (
	StateHealthy = core.StateHealthy
	StateSuspect = core.StateSuspect
	StateDown    = core.StateDown
)

// AgentHealth is one agent's lifecycle snapshot.
type AgentHealth = core.AgentHealth

// Health returns every agent's failure-domain lifecycle snapshot, in
// agent order, without touching the network.
func (fs *FS) Health() []AgentHealth { return fs.c.Health() }

// CheckHealth runs one synchronous health round — probing every agent,
// applying lifecycle transitions, and re-admitting recovered agents — and
// returns the resulting snapshot. The background monitor (see
// Config.HealthInterval) calls the same machinery on a timer.
func (fs *FS) CheckHealth() []AgentHealth { return fs.c.ProbeOnce() }

// ScrubOptions tune a scrub pass (see FS.ScrubObject and File.Scrub).
type ScrubOptions = core.ScrubOptions

// ScrubReport totals one scrub pass: rows verified, corruption and
// parity mismatches found, units repaired, and what could not be healed.
type ScrubReport = core.ScrubReport

// ScrubObject opens the named object, verifies it row by row against the
// integrity envelope and the parity equation, optionally repairs what it
// finds, and closes it again.
func (fs *FS) ScrubObject(name string, opts ScrubOptions) (ScrubReport, error) {
	return fs.c.ScrubObject(name, opts)
}

// ScrubAll scrubs every object on the agent set in turn.
func (fs *FS) ScrubAll(opts ScrubOptions) (ScrubReport, error) {
	return fs.c.ScrubAll(opts)
}

// ScrubOpen scrubs every currently open file once, repairing (when
// Parity is enabled) what it finds — the same pass the background
// scrubber (Config.ScrubInterval) runs on its timer.
func (fs *FS) ScrubOpen() ScrubReport { return fs.c.ScrubOnce() }

// ErrCorrupt is the sentinel all at-rest corruption errors match with
// errors.Is: data failed its integrity checksum and was not served.
var ErrCorrupt = integrity.ErrCorrupt

// CorruptError reports the byte range of an object that failed its
// at-rest integrity check.
type CorruptError = integrity.CorruptError

// IsCorrupt reports whether err (possibly a RemoteError that crossed the
// wire) describes at-rest corruption.
func IsCorrupt(err error) bool { return integrity.IsCorrupt(err) }

// NewIntegrityStore wraps a store so every fragment is kept in a
// block-checksum envelope: writes are checksummed per block, reads are
// verified, and damaged ranges surface as CorruptError instead of bad
// bytes. blockSize 0 selects the default (4 KiB); it should divide the
// striping unit so parity repair can overwrite whole blocks.
func NewIntegrityStore(inner store.Store, blockSize int64) store.Store {
	return integrity.NewStore(inner, blockSize)
}

// Stats is the client's full telemetry snapshot: protocol counters,
// per-operation latency percentiles, and the per-agent breakdown.
type Stats = core.StatsSnapshot

// AgentStats is one agent's telemetry snapshot within Stats.
type AgentStats = core.AgentStats

// MetricsSnapshot is a value copy of the client's protocol counters.
type MetricsSnapshot = core.MetricsSnapshot

// OverloadStats summarizes the client's overload-control activity within
// Stats: load shed, hedged, denied, and the retry budget's fill level.
type OverloadStats = core.OverloadStats

// CacheStats is the client block cache's counter snapshot within Stats:
// hits, misses, read-ahead activity, write-behind flushes and coherence
// invalidations. All zeros when the cache tier is disabled.
type CacheStats = cache.Stats

// CachedObject names one cached object together with the generation it
// was cached at — the currency of the cache-coherence protocol (see
// Config.CacheSync and MediatorBroker.CacheSync).
type CachedObject = mediator.CachedObject

// BreakerState is one agent circuit breaker's position: closed,
// half-open, or open.
type BreakerState = core.BreakerState

// Circuit breaker states.
const (
	BreakerClosed   = core.BreakerClosed
	BreakerOpen     = core.BreakerOpen
	BreakerHalfOpen = core.BreakerHalfOpen
)

// Overload-control error sentinels, matched with errors.Is.
var (
	// ErrDeadline: the operation exceeded Config.OpTimeout.
	ErrDeadline = core.ErrDeadline
	// ErrRetryBudget: a retry or hedge was denied because the shared
	// retry budget is exhausted.
	ErrRetryBudget = core.ErrRetryBudget
	// ErrAgentBusy: an agent shed the request with pushback.
	ErrAgentBusy = core.ErrAgentBusy
	// ErrMediatorOverloaded: a mediator rejected a new session because
	// reserved capacity exceeded its admission watermark.
	ErrMediatorOverloaded = mediator.ErrOverloaded
)

// LatencySnapshot summarizes one latency histogram: count, mean, min,
// max and the p50/p90/p99 percentiles.
type LatencySnapshot = obs.Snapshot

// TraceEvent is one retained burst-level trace event.
type TraceEvent = obs.Event

// Stats snapshots the client's telemetry. Safe to call during live
// transfers; recording is never blocked.
func (fs *FS) Stats() Stats { return fs.c.Stats() }

// CacheStats returns the block cache's counters — Stats().Cache without
// the full snapshot cost. All zeros when the cache tier is disabled.
func (fs *FS) CacheStats() CacheStats { return fs.c.CacheStats() }

// CoherenceSync runs one synchronous cache-coherence round through
// Config.CacheSync: declare recent writes, learn which cached objects
// other clients have overwritten, and invalidate them. The health
// monitor (Config.HealthInterval) calls the same machinery every round;
// CoherenceSync is for tests and clients that need a bounded staleness
// point without waiting for the next round.
func (fs *FS) CoherenceSync() { fs.c.CoherenceSync() }

// Scheme describes the redundancy scheme as "m+k" (data+parity units per
// stripe row), or "none" when parity is disabled.
func (fs *FS) Scheme() string { return fs.c.Scheme() }

// LayoutInfo describes the striping layout: the unit size, the agent
// count, and the redundancy scheme split into data and parity units per
// stripe row.
type LayoutInfo struct {
	Unit         int64
	Agents       int
	DataShards   int
	ParityShards int
	Scheme       string // "m+k", or "none" without parity
}

// Layout reports the client's striping layout and redundancy scheme.
func (fs *FS) Layout() LayoutInfo {
	l := fs.c.Layout()
	return LayoutInfo{
		Unit:         l.Unit,
		Agents:       l.Agents,
		DataShards:   l.DataPerRow(),
		ParityShards: l.ParityPerRow(),
		Scheme:       fs.c.Scheme(),
	}
}

// Metrics returns a value copy of the client's protocol counters.
func (fs *FS) Metrics() MetricsSnapshot { return fs.c.MetricsSnapshot() }

// TraceEvents returns up to n recent trace events, oldest first.
func (fs *FS) TraceEvents(n int) []TraceEvent { return fs.c.TraceEvents(n) }

// OpTrace is one kept per-operation span tree (see Config.TraceRate).
type OpTrace = obs.Trace

// SpanContext is a trace context minted at a client operation and
// propagated across the wire to agents and mediators.
type SpanContext = obs.SpanContext

// SpanRecord is one finished span within an OpTrace's tree.
type SpanRecord = obs.SpanRecord

// Tracer returns the client's span tracer, or nil when tracing is
// disabled (Config.TraceRate 0 and no Config.Tracer).
func (fs *FS) Tracer() *obs.Tracer { return fs.c.Tracer() }

// Traces returns the kept per-operation span trees, oldest first: ops
// head-sampled at Config.TraceRate plus every op the tail sampler kept
// for erroring, retrying, or running slower than its operation's p99.
func (fs *FS) Traces() []OpTrace { return fs.c.Tracer().Traces() }

// Obs returns the client's metric registry, for HTTP export or custom
// instrument registration.
func (fs *FS) Obs() *obs.Registry { return fs.c.Obs() }

// Close releases the client's network resources. Files opened from the
// FS must be closed separately.
func (fs *FS) Close() error { return fs.c.Close() }

// MediatorRequirements is what a client asks a mediator tier for when
// opening a session: required data-rate and redundancy scheme.
type MediatorRequirements = mediator.Requirements

// TransferPlan is an admitted session's transfer plan: agents, striping
// unit, and redundancy scheme.
type TransferPlan = mediator.Plan

// SessionRecord is the full state of an admitted mediator session — the
// plan plus its placement key, home replica and lease deadline. Clients
// keep it so a surviving replica can adopt the session after its home
// mediator dies.
type SessionRecord = mediator.SessionRecord

// ReplicaStatus is one mediator replica's operator-facing state.
type ReplicaStatus = mediator.ReplicaStatus

// MediatorConfig describes the installation a mediator tier administers:
// agent capacities, interconnects, lease policy.
type MediatorConfig = mediator.Config

// MediatorAgentInfo describes one storage agent's capacity to the
// mediator's admission model.
type MediatorAgentInfo = mediator.AgentInfo

// MediatorNetInfo describes one interconnect to the mediator's admission
// model.
type MediatorNetInfo = mediator.NetInfo

// MediatorFederation is an in-process tier of federated mediator
// replicas: the harness for simulations and single-process deployments.
// Distributed deployments run one replica per swiftd and federate over
// the wire instead.
type MediatorFederation = mediator.Federation

// NewMediatorFederation builds one mediator replica per name over the
// shared installation described by base and links them as peers with
// asynchronous session mirroring.
func NewMediatorFederation(names []string, base MediatorConfig) (*MediatorFederation, error) {
	return mediator.NewFederation(names, base)
}

// MediatorEndpoint is one mediator replica as seen by a client: either
// an in-process *mediator.Mediator or a medrpc wire stub.
type MediatorEndpoint = core.MediatorEndpoint

// BrokerConfig configures a MediatorBroker.
type BrokerConfig = core.BrokerConfig

// MediatorBroker is the client-side mediator failover layer: session
// open with replica rotation, lease heartbeats that transparently
// re-target across crashes and drains, and capped-backoff retries.
type MediatorBroker = core.MediatorBroker

// NewMediatorBroker builds the failover broker over a mediator replica
// set. Wire the returned broker's Heartbeat into Config.Heartbeat so the
// health monitor renews the session lease while the client lives.
func NewMediatorBroker(cfg BrokerConfig) (*MediatorBroker, error) {
	return core.NewMediatorBroker(cfg)
}

// ApplyPlan configures the client from an admitted transfer plan: agent
// set (striping order), striping unit, and redundancy scheme.
func (c *Config) ApplyPlan(p *TransferPlan) {
	c.Agents = append([]string(nil), p.Addrs...)
	c.StripeUnit = p.Unit
	c.Parity = p.Parity
	c.ParityShards = p.ParityShards
	c.DataShards = 0
	if p.Parity {
		c.DataShards = len(p.Addrs) - p.ParityShards
	}
}

// AgentConfig configures a storage agent server.
type AgentConfig = agent.Config

// Agent is a running storage agent server.
type Agent = agent.Agent

// StartAgent starts a storage agent serving st on the host's well-known
// port. It is the server-side entry point; cmd/swiftd wraps it.
func StartAgent(host transport.Host, st store.Store, cfg AgentConfig) (*Agent, error) {
	return agent.New(host, st, cfg)
}

// NewMemStore returns an in-memory object store for agents.
func NewMemStore() store.Store { return store.NewMem() }

// NewFileStore returns a directory-backed object store for agents.
func NewFileStore(dir string) (store.Store, error) { return store.NewFileStore(dir) }
