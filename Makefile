# Swift reproduction — common targets.

GO ?= go

.PHONY: all build vet test race bench tables figures ablations examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/transport/... ./internal/nfs/ ./internal/sim/

# One benchmark per paper table/figure plus micro-benchmarks.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x .

# Full-fidelity reproductions (run on an otherwise idle machine).
tables:
	$(GO) run ./cmd/swift-bench -table all

figures:
	$(GO) run ./cmd/swift-sim -figure all

ablations:
	$(GO) run ./cmd/swift-bench -table ablations

edf:
	$(GO) run ./cmd/swift-sim -figure edf

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/resilience
	$(GO) run ./examples/multinet
	$(GO) run ./examples/videoserver

clean:
	$(GO) clean ./...
