# Swift reproduction — common targets.

GO ?= go

.PHONY: all build vet lint test race fuzz bench tables figures ablations \
	ec-bench hotpath-bench examples obs-test obs-smoke scrub-smoke \
	failover-smoke trace-smoke overload-smoke cache-smoke clean

all: build vet test obs-test

build:
	$(GO) build ./...

# vet = the standard toolchain checks plus swiftvet, the project's own
# analyzers (injected clocks, lock/IO discipline, error attribution,
# metric naming, goroutine shutdown paths, and the interprocedural gates:
# hot-path allocations, pooled-buffer lifecycles, lock-guarded fields,
# deadline propagation). -time prints per-analyzer wall time so a slow
# analyzer is caught before it drags the whole gate past its budget.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/swiftvet -time ./...

# lint = the full static gate run by CI's lint job: swiftvet, gofmt
# cleanliness, and (when the tool is on PATH, e.g. installed by CI)
# govulncheck over the module.
lint:
	$(GO) run ./cmd/swiftvet ./...
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$fmtout"; exit 1; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI installs it)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Telemetry-focused tests under the race detector: the obs primitives,
# exporter goldens, and the instrumentation hooks in every layer.
obs-test:
	$(GO) test -race ./internal/obs/ ./internal/mediator/ ./internal/transport/...
	$(GO) test -race ./internal/core/ -run 'Stats|Telemetry|HealthTransitionsObserved|SharedRegistry'
	$(GO) test -race ./internal/agent/ -run 'Telemetry|RejectCounted'

# End-to-end observability smoke: live /metrics, /trace and pprof on
# swift-load and swiftd while traffic flows.
obs-smoke:
	sh scripts/obs-smoke.sh

# End-to-end data-integrity smoke: rot a fragment on disk beneath the
# checksum envelope, then detect, repair, and verify through swiftctl.
scrub-smoke:
	sh scripts/scrub-smoke.sh

# End-to-end mediator-federation smoke: SIGKILL and SIGTERM (drain)
# mediator replicas under live leased sessions; clients must fail over
# with zero lapsed leases.
failover-smoke:
	sh scripts/failover-smoke.sh

# End-to-end distributed-tracing smoke: swiftd + a leased client over
# real UDP with injected agent latency; the injected delay must surface
# in the agent's wire-joined service spans via `swiftctl trace -slow`.
trace-smoke:
	sh scripts/trace-smoke.sh

# End-to-end overload-control smoke: 3x overdemand against swiftd agents
# with bounded service queues over real UDP; the excess must shed via
# explicit pushback (counters nonzero), with zero lifecycle flaps and a
# byte-identical read-back after the surge.
overload-smoke:
	sh scripts/overload-smoke.sh

# End-to-end cache-coherence smoke: a cached reader in one process,
# a writer in another, coherence-only mediator sessions over real UDP;
# the reader must converge on the new bytes (invalidation observed)
# while still serving its final pass from cache.
cache-smoke:
	sh scripts/cache-smoke.sh

# Short fuzz pass over the wire codecs, the at-rest integrity
# envelope, the erasure codec, and the lint annotation parsers
# (CI smoke; go native fuzzing).
fuzz:
	$(GO) test ./internal/wire/ -run XXX -fuzz FuzzUnmarshal -fuzztime 20s
	$(GO) test ./internal/wire/ -run XXX -fuzz FuzzControlPayloads -fuzztime 20s
	$(GO) test ./internal/integrity/ -run XXX -fuzz FuzzIntegrityEnvelope -fuzztime 20s
	$(GO) test ./internal/ec/ -run XXX -fuzz FuzzECRoundTrip -fuzztime 20s
	$(GO) test ./internal/lint/ -run XXX -fuzz FuzzParseDirective -fuzztime 10s
	$(GO) test ./internal/lint/ -run XXX -fuzz FuzzParseGuard -fuzztime 10s
	$(GO) test ./internal/lint/ -run XXX -fuzz FuzzParseAllow -fuzztime 10s

# One benchmark per paper table/figure plus micro-benchmarks.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x .

# Full-fidelity reproductions (run on an otherwise idle machine).
tables:
	$(GO) run ./cmd/swift-bench -table all

figures:
	$(GO) run ./cmd/swift-sim -figure all

ablations:
	$(GO) run ./cmd/swift-bench -table ablations

# Erasure-coding codec microbench: encode/reconstruct MB/s, XOR vs
# Reed–Solomon, across striping-unit sizes. Writes BENCH_ec.json.
ec-bench:
	$(GO) run ./cmd/swift-bench -table ec

# Client hot-path profile: ns/byte and allocs/op over the read/write
# path, tracing off vs on (writes BENCH_hotpath.json).
hotpath-bench:
	$(GO) run ./cmd/swift-bench -table hotpath

edf:
	$(GO) run ./cmd/swift-sim -figure edf

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/resilience
	$(GO) run ./examples/multinet
	$(GO) run ./examples/videoserver

clean:
	$(GO) clean ./...
